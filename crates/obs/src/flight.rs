//! Always-on flight recorder: a fixed-capacity, lock-free ring of compact
//! events — the training run's black box.
//!
//! Every event is packed into eight `u64` words (a publish stamp, a
//! timestamp/kind/code word, payload bytes, an auxiliary value, and up to
//! 24 label bytes). Recording claims a slot with one `fetch_add` and then
//! issues plain atomic stores, so the hot path costs a few atomics and no
//! locks — cheap enough to stay on even when full span telemetry is
//! disabled. The ring overwrites its oldest events; readers run only at
//! dump time and use the per-slot stamp to skip slots caught mid-write
//! (an event can be lost to a torn write only if the ring wraps an entire
//! lap while one `record` call is in flight).
//!
//! The event schema (see `DESIGN.md` "Observability plane"): `seq` is the
//! global event index, `t` seconds since recorder creation, `kind` one of
//! [`EventKind`], `code` a kind-specific discriminant (route index for
//! transfers, fault op for retries, span category for spans), `bytes` the
//! payload size, `aux` a kind-specific value (attempt number, step
//! number, checkpoint generation, span duration in µs), and `label` the
//! first 24 bytes of the blob key or span label.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Words per ring slot: stamp, meta, bytes, aux, label ×3, reserved.
const SLOT_WORDS: usize = 8;

/// Max label bytes preserved per event (3 little-endian `u64` words).
pub const LABEL_BYTES: usize = 24;

/// Default capacity of the process-global recorder ([`flight`]).
pub const DEFAULT_CAPACITY: usize = 4096;

/// What a flight-recorder event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A completed telemetry span (`code` = span category, `aux` =
    /// duration in µs). Only recorded while span telemetry is enabled.
    Span = 1,
    /// An inter-tier blob transfer (`code` = route index, always on).
    Transfer = 2,
    /// An SSD operation failed and was re-issued (`code` = fault op,
    /// `aux` = attempt number).
    Retry = 3,
    /// An SSD operation exhausted its retry budget (`code` = fault op,
    /// `aux` = attempts).
    GiveUp = 4,
    /// A host-pressure spill degraded a blob to the SSD tier.
    Spill = 5,
    /// A checkpoint generation committed (`aux` = generation).
    CheckpointCommit = 6,
    /// A checkpoint generation failed verification and the loader fell
    /// back to an older one (`aux` = failing generation).
    CheckpointFallback = 7,
    /// A training error surfaced (`label` = truncated error text).
    Error = 8,
    /// A training step began (`aux` = step number).
    StepBegin = 9,
    /// A training step finished (`aux` = step number, `bytes` = traffic).
    StepEnd = 10,
    /// The plan-conformance monitor emitted a finding (`code` = drift
    /// kind index, `label` = truncated detail).
    Drift = 11,
}

impl EventKind {
    /// Stable lower-case name, used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Transfer => "transfer",
            EventKind::Retry => "retry",
            EventKind::GiveUp => "give_up",
            EventKind::Spill => "spill",
            EventKind::CheckpointCommit => "ckpt_commit",
            EventKind::CheckpointFallback => "ckpt_fallback",
            EventKind::Error => "error",
            EventKind::StepBegin => "step_begin",
            EventKind::StepEnd => "step_end",
            EventKind::Drift => "drift",
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Span,
            2 => EventKind::Transfer,
            3 => EventKind::Retry,
            4 => EventKind::GiveUp,
            5 => EventKind::Spill,
            6 => EventKind::CheckpointCommit,
            7 => EventKind::CheckpointFallback,
            8 => EventKind::Error,
            9 => EventKind::StepBegin,
            10 => EventKind::StepEnd,
            11 => EventKind::Drift,
            _ => return None,
        })
    }

    /// Human-readable name for this kind's `code` discriminant, if the
    /// kind defines one. Route indices follow `Route::ALL` order and span
    /// categories `SpanCategory` order in `ratel-storage` (a stable,
    /// documented contract — this crate sits below storage).
    pub fn code_name(self, code: u8) -> Option<&'static str> {
        const ROUTES: [&str; 4] = ["gpu->host", "host->gpu", "host->ssd", "ssd->host"];
        const FAULT_OPS: [&str; 3] = ["read", "write", "remove"];
        const SPAN_CATEGORIES: [&str; 6] = [
            "forward",
            "backward",
            "optimizer",
            "transfer",
            "prefetch",
            "other",
        ];
        const DRIFT: [&str; 4] = [
            "unplanned_transfer",
            "byte_mismatch",
            "stage_inversion",
            "stall",
        ];
        let table: &[&str] = match self {
            EventKind::Transfer | EventKind::Spill => &ROUTES,
            EventKind::Retry | EventKind::GiveUp => &FAULT_OPS,
            EventKind::Span => &SPAN_CATEGORIES,
            EventKind::Drift => &DRIFT,
            _ => return None,
        };
        table.get(code as usize).copied()
    }
}

/// One decoded flight-recorder event (see [`EventKind`] for field
/// semantics per kind).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global 0-based event index (monotonic across ring wraps).
    pub seq: u64,
    /// Seconds since recorder creation.
    pub t: f64,
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific discriminant (route, fault op, span category, …).
    pub code: u8,
    /// Payload bytes (transfers, step traffic), 0 otherwise.
    pub bytes: u64,
    /// Kind-specific value (attempt, step, generation, duration µs).
    pub aux: u64,
    /// First [`LABEL_BYTES`] bytes of the blob key / span label / detail.
    pub label: String,
}

/// The lock-free event ring. Most code uses the process-global
/// [`flight`]; separate instances exist for tests.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    cursor: AtomicU64,
    enabled: AtomicBool,
    slots: Box<[AtomicU64]>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (min 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        let mut slots = Vec::with_capacity(capacity * SLOT_WORDS);
        slots.resize_with(capacity * SLOT_WORDS, || AtomicU64::new(0));
        FlightRecorder {
            epoch: Instant::now(),
            cursor: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            slots: slots.into_boxed_slice(),
            capacity,
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether recording is on (it is by default; the kill switch exists
    /// so the overhead benchmark can measure the recorder against a
    /// recorder-compiled-out baseline).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips the recording kill switch (benchmarks/tests only — the
    /// recorder is designed to stay on in production runs).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Total events ever recorded (≥ what the ring still holds).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event: one `fetch_add` to claim a slot, relaxed
    /// payload stores, one release store to publish.
    #[inline]
    pub fn record(&self, kind: EventKind, code: u8, label: &str, bytes: u64, aux: u64) {
        if !self.enabled() {
            return;
        }
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let base = (idx as usize % self.capacity) * SLOT_WORDS;
        let t_us = self.epoch.elapsed().as_micros() as u64 & ((1 << 48) - 1);
        let meta = (t_us << 16) | ((kind as u64) << 8) | code as u64;
        let slot = &self.slots[base..base + SLOT_WORDS];
        slot[0].store(0, Ordering::Release); // invalidate while writing
        slot[1].store(meta, Ordering::Relaxed);
        slot[2].store(bytes, Ordering::Relaxed);
        slot[3].store(aux, Ordering::Relaxed);
        let mut packed = [0u8; LABEL_BYTES];
        let raw = label.as_bytes();
        let n = raw.len().min(LABEL_BYTES);
        packed[..n].copy_from_slice(&raw[..n]);
        for (w, chunk) in packed.chunks_exact(8).enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            slot[4 + w].store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        slot[0].store(idx + 1, Ordering::Release); // publish
    }

    /// Decodes the ring's surviving events, oldest first. Slots caught
    /// mid-write are skipped.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        for s in 0..self.capacity {
            let base = s * SLOT_WORDS;
            let slot = &self.slots[base..base + SLOT_WORDS];
            let stamp = slot[0].load(Ordering::Acquire);
            if stamp == 0 {
                continue;
            }
            let meta = slot[1].load(Ordering::Relaxed);
            let bytes = slot[2].load(Ordering::Relaxed);
            let aux = slot[3].load(Ordering::Relaxed);
            let mut packed = [0u8; LABEL_BYTES];
            for (w, chunk) in packed.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&slot[4 + w].load(Ordering::Relaxed).to_le_bytes());
            }
            if slot[0].load(Ordering::Acquire) != stamp {
                continue; // torn: overwritten while we read
            }
            let Some(kind) = EventKind::from_u8((meta >> 8) as u8) else {
                continue;
            };
            let end = packed.iter().position(|&b| b == 0).unwrap_or(LABEL_BYTES);
            out.push(FlightEvent {
                seq: stamp - 1,
                t: (meta >> 16) as f64 / 1e6,
                kind,
                code: meta as u8,
                bytes,
                aux,
                label: String::from_utf8_lossy(&packed[..end]).into_owned(),
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Serializes the ring (plus a `reason` header and drop accounting)
    /// as a JSON document — the postmortem dump format.
    pub fn dump_json(&self, reason: &str) -> String {
        use std::fmt::Write as _;
        let events = self.events();
        let recorded = self.recorded();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        let _ = writeln!(
            out,
            "{{\"reason\":\"{}\",\"recorded\":{recorded},\"capacity\":{},\
             \"overwritten\":{},\"events\":[",
            esc(reason),
            self.capacity,
            recorded.saturating_sub(events.len() as u64),
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"t\":{:.6},\"kind\":\"{}\",\"code\":{},",
                e.seq,
                e.t,
                e.kind.name(),
                e.code,
            );
            if let Some(code_name) = e.kind.code_name(e.code) {
                let _ = write!(out, "\"code_name\":\"{code_name}\",");
            }
            let _ = write!(
                out,
                "\"bytes\":{},\"aux\":{},\"label\":\"{}\"}}",
                e.bytes,
                e.aux,
                esc(&e.label)
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The process-global flight recorder ([`DEFAULT_CAPACITY`] events).
pub fn flight() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_decodes_in_order() {
        let rec = FlightRecorder::new(64);
        rec.record(EventKind::Transfer, 3, "layer0/p16", 1024, 0);
        rec.record(EventKind::Retry, 0, "layer0/p16", 0, 1);
        rec.record(EventKind::GiveUp, 0, "layer0/p16", 0, 4);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Transfer);
        assert_eq!(events[0].bytes, 1024);
        assert_eq!(events[0].label, "layer0/p16");
        assert_eq!(events[0].kind.code_name(events[0].code), Some("ssd->host"));
        assert_eq!(events[2].kind, EventKind::GiveUp);
        assert_eq!(events[2].aux, 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(16);
        for i in 0..40u64 {
            rec.record(EventKind::StepBegin, 0, "", 0, i);
        }
        let events = rec.events();
        assert_eq!(events.len(), 16);
        assert_eq!(rec.recorded(), 40);
        // Tail survives: the last event is step 39.
        assert_eq!(events.last().unwrap().aux, 39);
        let dump = rec.dump_json("wrap test");
        assert!(dump.contains("\"overwritten\":24"));
    }

    #[test]
    fn long_labels_truncate_and_disabled_records_nothing() {
        let rec = FlightRecorder::new(16);
        let long = "layer12/optimizer-moments-staged-very-long";
        rec.record(EventKind::Spill, 2, long, 7, 0);
        let e = &rec.events()[0];
        assert_eq!(e.label, &long[..LABEL_BYTES]);
        rec.set_enabled(false);
        rec.record(EventKind::Spill, 2, "x", 0, 0);
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn concurrent_writers_keep_the_ring_decodable() {
        let rec = std::sync::Arc::new(FlightRecorder::new(128));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        rec.record(EventKind::Transfer, (t % 4) as u8, "key", i, t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 4000);
        let events = rec.events();
        assert!(!events.is_empty() && events.len() <= 128);
        for e in &events {
            assert_eq!(e.kind, EventKind::Transfer);
            assert_eq!(e.label, "key");
        }
    }
}
