#![warn(missing_docs)]
//! Unified observability plane for the Ratel reproduction.
//!
//! Three pillars, each deliberately below every other workspace crate in
//! the dependency order so the storage engine, the training engine, and
//! the bench harness can all feed it:
//!
//! * **Metrics registry** ([`Registry`], [`metrics`]) — typed counters,
//!   gauges, and power-of-two latency histograms under one `ratel_*`
//!   namespace, exportable as Prometheus text exposition format or JSONL
//!   (both hand-rolled; the workspace has no serde). A self-check parser
//!   ([`metrics::validate_prometheus`]) lets CI prove the export is
//!   well-formed without a real Prometheus.
//! * **Flight recorder** ([`FlightRecorder`], [`flight`]) — an always-on,
//!   fixed-capacity, lock-free ring of compact events (transfers,
//!   retries, spills, checkpoint commits, spans, step markers). Recording
//!   an event costs one `fetch_add` plus a handful of relaxed stores, so
//!   it stays on even when full span telemetry is disabled: a black box
//!   for crash forensics.
//! * **Postmortem dumps** ([`dump_postmortem`]) — whenever a training
//!   error surfaces, a fault exhausts its retry budget, or a checkpoint
//!   load falls back a generation, the ring is serialized to a JSON file
//!   so the events leading up to the failure survive the process.
//!
//! The plan-conformance monitor that consumes this plane lives in
//! `ratel::engine::conformance` (it needs the schedule twin, which sits
//! above this crate).

pub mod flight;
pub mod metrics;

pub use flight::{flight, EventKind, FlightEvent, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, Registry};

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use ratel_check::sync::Mutex;

/// The process-global metrics registry. Bridges all over the workspace
/// publish into this one instance so a single export call sees the whole
/// `ratel_*` namespace.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

fn postmortem_state() -> &'static Mutex<(Option<PathBuf>, Option<PathBuf>)> {
    // (configured dir, last dump path)
    static STATE: OnceLock<Mutex<(Option<PathBuf>, Option<PathBuf>)>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::named("obs.postmortem", (None, None)))
}

/// Overrides where postmortem dumps are written (highest precedence;
/// above the `RATEL_POSTMORTEM_DIR` environment variable and the system
/// temp dir). Intended for tests and embedding harnesses.
pub fn set_postmortem_dir(dir: impl Into<PathBuf>) {
    postmortem_state().lock().0 = Some(dir.into());
}

/// The file a postmortem dump will be (over)written to: one file per
/// process, under the configured dir, `RATEL_POSTMORTEM_DIR`, or the
/// system temp dir.
pub fn postmortem_path() -> PathBuf {
    let configured = postmortem_state().lock().0.clone();
    let dir = configured
        .or_else(|| std::env::var_os("RATEL_POSTMORTEM_DIR").map(PathBuf::from))
        .unwrap_or_else(std::env::temp_dir);
    dir.join(format!("ratel-postmortem-{}.json", std::process::id()))
}

/// Serializes the global flight recorder to the postmortem file (see
/// [`postmortem_path`]), recording `reason` in the dump header. Returns
/// the written path, or `None` if the write failed (postmortems are
/// best-effort: a failing dump must never mask the original error).
pub fn dump_postmortem(reason: &str) -> Option<PathBuf> {
    let path = postmortem_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = flight().dump_json(reason);
    match std::fs::write(&path, json) {
        Ok(()) => {
            postmortem_state().lock().1 = Some(path.clone());
            Some(path)
        }
        Err(_) => None,
    }
}

/// Path of the most recent successful [`dump_postmortem`] in this
/// process, if any.
pub fn last_postmortem() -> Option<PathBuf> {
    postmortem_state().lock().1.clone()
}

/// Convenience: `true` if `path` exists and parses as a flight-recorder
/// dump (has a `"reason"` header and an `"events"` array). Used by tests
/// and the bench harness to sanity-check dumps without a JSON parser.
pub fn looks_like_postmortem(path: &Path) -> bool {
    match std::fs::read_to_string(path) {
        Ok(text) => text.contains("\"reason\"") && text.contains("\"events\""),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postmortem_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ratel-obs-pm-{}", std::process::id()));
        set_postmortem_dir(&dir);
        flight().record(EventKind::Retry, 0, "layer0/p16", 0, 1);
        let path = dump_postmortem("unit test").expect("dump should succeed");
        assert_eq!(path, postmortem_path());
        assert_eq!(last_postmortem().as_deref(), Some(path.as_path()));
        assert!(looks_like_postmortem(&path));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("unit test"));
        assert!(text.contains("layer0/p16"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
