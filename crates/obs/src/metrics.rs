//! Typed metrics registry with Prometheus-text and JSONL export.
//!
//! Metrics are registered once by name (+ an optional static label set)
//! and return cheap `Arc`-backed handles; every subsequent registration
//! under the same name returns a handle to the same sample, so bridges
//! can re-resolve handles without caching them. Three types:
//!
//! * [`Counter`] — monotonically increasing `u64`. Bridges mirroring an
//!   externally-maintained cumulative count use [`Counter::set_total`].
//! * [`Gauge`] — an `f64` that can go up and down.
//! * [`Histogram`] — power-of-two latency buckets matching the storage
//!   layer's `LatencyHistogram` layout (base 1 µs, 32 buckets), with
//!   percentile helpers ([`Histogram::quantile_upper_bound`], built on
//!   [`pow2_quantile_upper_bound`]).
//!
//! The export formats are hand-rolled (the workspace vendors no serde);
//! [`validate_prometheus`] is a self-check parser strict enough for CI to
//! prove an export well-formed without running a real Prometheus.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ratel_check::sync::Mutex;

/// Number of histogram buckets (mirrors
/// `ratel_storage::telemetry::HISTOGRAM_BUCKETS`).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Lower bound of histogram bucket 0, in seconds (1 µs). Bucket `i`
/// covers `[1µs·2^i, 1µs·2^(i+1))`; the first and last buckets absorb
/// anything below/above the covered range.
pub const HISTOGRAM_BASE_SECONDS: f64 = 1e-6;

/// Upper bound of the smallest power-of-two bucket such that at least
/// `q` (0..=1) of the observations in `buckets` fall at or below it.
/// Bucket `i` is `[base·2^i, base·2^(i+1))`. Returns 0 when empty.
///
/// This is the shared percentile helper: it works over this module's
/// [`Histogram`] and over snapshots of the storage layer's power-of-two
/// `LatencyHistogram` alike.
pub fn pow2_quantile_upper_bound(buckets: &[u64], base_seconds: f64, q: f64) -> f64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil() as u64;
    let mut seen = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= target {
            return base_seconds * (1u64 << (i + 1).min(63)) as f64;
        }
    }
    base_seconds * (1u64 << buckets.len().min(63)) as f64
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Mirrors an externally-maintained cumulative total (bridge use:
    /// the source counter is the ground truth, this sample echoes it).
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// A power-of-two latency histogram handle (see module docs for the
/// bucket layout).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation, in seconds.
    pub fn record(&self, seconds: f64) {
        let seconds = seconds.max(0.0);
        let idx = if seconds <= HISTOGRAM_BASE_SECONDS {
            0
        } else {
            let i = (seconds / HISTOGRAM_BASE_SECONDS).log2().floor() as i64;
            i.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0
            .sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Snapshot of the bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.0.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Percentile helper: upper bound of the bucket containing the
    /// `q`-quantile (see [`pow2_quantile_upper_bound`]).
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        pow2_quantile_upper_bound(&self.buckets(), HISTOGRAM_BASE_SECONDS, q)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Sample {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the canonical label string (`""` for unlabeled).
    samples: BTreeMap<String, Sample>,
}

/// A metrics registry: named families of typed samples. See the module
/// docs; most code uses the process-global [`crate::registry`].
#[derive(Debug)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            families: Mutex::named("obs.registry", BTreeMap::new()),
        }
    }
}

fn label_key(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    parts.sort();
    parts.join(",")
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Sample {
        assert!(
            valid_metric_name(name),
            "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        let mut families = self.families.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            samples: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} already registered as a {}, not a {}",
            family.kind.name(),
            kind.name()
        );
        family
            .samples
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Sample::Counter(Counter(Arc::new(AtomicU64::new(0)))),
                Kind::Gauge => Sample::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))),
                Kind::Histogram => Sample::Histogram(Histogram(Arc::new(HistogramCore::default()))),
            })
            .clone()
    }

    /// Registers (or re-resolves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-resolves) a counter with a static label set.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels) {
            Sample::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or re-resolves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-resolves) a gauge with a static label set.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels) {
            Sample::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Registers (or re-resolves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or re-resolves) a histogram with a static label set.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, Kind::Histogram, labels) {
            Sample::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Renders every family in Prometheus text exposition format, names
    /// sorted, `# HELP`/`# TYPE` headers per family. Histograms emit
    /// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        let families = self.families.lock();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.name());
            for (labels, sample) in &family.samples {
                match sample {
                    Sample::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels), c.get());
                    }
                    Sample::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", braced(labels), g.get());
                    }
                    Sample::Histogram(h) => {
                        let buckets = h.buckets();
                        let mut cumulative = 0u64;
                        for (i, b) in buckets.iter().enumerate() {
                            cumulative += b;
                            let le = HISTOGRAM_BASE_SECONDS * (1u64 << (i + 1).min(63)) as f64;
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                braced(&merge_le(labels, &format!("{le}")))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            braced(&merge_le(labels, "+Inf")),
                            h.count()
                        );
                        let _ = writeln!(out, "{name}_sum{} {}", braced(labels), h.sum_seconds());
                        let _ = writeln!(out, "{name}_count{} {}", braced(labels), h.count());
                    }
                }
            }
        }
        out
    }

    /// Renders every sample as one JSON object per line. Histogram lines
    /// carry `count`, `sum_seconds`, and the p50/p95/p99 percentile
    /// upper bounds.
    pub fn jsonl(&self) -> String {
        let families = self.families.lock();
        let mut out = String::new();
        for (name, family) in families.iter() {
            for (labels, sample) in &family.samples {
                let labels_json = labels_to_json(labels);
                match sample {
                    Sample::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{{\"name\":\"{}\",\"type\":\"counter\",\"labels\":{labels_json},\"value\":{}}}",
                            json_escape(name),
                            c.get()
                        );
                    }
                    Sample::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{{\"name\":\"{}\",\"type\":\"gauge\",\"labels\":{labels_json},\"value\":{}}}",
                            json_escape(name),
                            finite(g.get())
                        );
                    }
                    Sample::Histogram(h) => {
                        let _ = writeln!(
                            out,
                            "{{\"name\":\"{}\",\"type\":\"histogram\",\"labels\":{labels_json},\
                             \"count\":{},\"sum_seconds\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            json_escape(name),
                            h.count(),
                            finite(h.sum_seconds()),
                            finite(h.quantile_upper_bound(0.50)),
                            finite(h.quantile_upper_bound(0.95)),
                            finite(h.quantile_upper_bound(0.99)),
                        );
                    }
                }
            }
        }
        out
    }
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn merge_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("le=\"{le}\"")
    } else {
        format!("{labels},le=\"{le}\"")
    }
}

/// Converts a canonical label string (`k="v",k2="v2"`) into a JSON object.
fn labels_to_json(labels: &str) -> String {
    if labels.is_empty() {
        return "{}".to_string();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in parse_labels(labels).unwrap_or_default().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

/// Parses a Prometheus label body (`k="v",k2="v2"`), un-escaping values.
/// An empty body (from `name{}`) parses as no labels.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    if body.trim().is_empty() {
        return Ok(out);
    }
    let mut rest = body;
    loop {
        let eq = rest.find('=').ok_or("label missing '='")?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() || !valid_metric_name(&key) {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("label value not quoted".into());
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err("dangling escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        out.push((key, value));
        rest = after[1 + end + 1..].trim_start();
        if rest.is_empty() {
            return Ok(out);
        }
        rest = rest
            .strip_prefix(',')
            .ok_or("expected ',' between labels")?;
    }
}

/// Self-check parser for Prometheus text exposition format. Validates
/// metric/label names, numeric values, that every sample's family was
/// declared with a preceding `# TYPE`, and that histograms are internally
/// consistent (cumulative buckets non-decreasing, the `+Inf` bucket equal
/// to `_count`). Returns the number of samples on success.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    // (family, non-le labels) -> (ordered (le, cumulative), count sample)
    #[derive(Default)]
    struct HistoState {
        buckets: Vec<(f64, f64)>,
        count: Option<f64>,
    }
    let mut histos: BTreeMap<(String, String), HistoState> = BTreeMap::new();

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it.next().ok_or_else(|| err("TYPE missing name"))?;
                let kind = it.next().ok_or_else(|| err("TYPE missing kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err("unknown TYPE kind"));
                }
                if !valid_metric_name(name) {
                    return Err(err("bad metric name in TYPE"));
                }
                types.insert(name.to_string(), kind.to_string());
            } else if !rest.starts_with("HELP ") && !rest.starts_with("EOF") {
                // Other comments are legal; HELP needs no validation beyond
                // being a comment.
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(b) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| err("unclosed label braces"))?;
                (&line[..b], {
                    let labels = &line[b + 1..close];
                    parse_labels(labels).map_err(|e| err(&e))?;
                    (labels.to_string(), line[close + 1..].trim())
                })
            }
            None => {
                let sp = line.find(' ').ok_or_else(|| err("sample missing value"))?;
                (&line[..sp], (String::new(), line[sp + 1..].trim()))
            }
        };
        let (labels, value_str) = rest;
        if !valid_metric_name(name_part) {
            return Err(err("bad metric name"));
        }
        let value: f64 = match value_str.split_whitespace().next() {
            Some("+Inf") => f64::INFINITY,
            Some(v) => v.parse().map_err(|_| err("unparseable value"))?,
            None => return Err(err("sample missing value")),
        };
        samples += 1;

        // Resolve the family: exact name, or histogram sub-sample.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name_part
                    .strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name_part);
        let declared = types
            .get(family)
            .ok_or_else(|| err("sample precedes its # TYPE declaration"))?;
        if declared == "counter" && value < 0.0 {
            return Err(err("negative counter"));
        }
        if declared == "histogram" {
            let parsed = parse_labels(&labels).map_err(|e| err(&e))?;
            let le = parsed
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone());
            let others = label_key(
                &parsed
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect::<Vec<_>>(),
            );
            let state = histos.entry((family.to_string(), others)).or_default();
            if name_part.ends_with("_bucket") {
                let le = le.ok_or_else(|| err("histogram bucket missing le"))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().map_err(|_| err("unparseable le bound"))?
                };
                state.buckets.push((bound, value));
            } else if name_part.ends_with("_count") {
                state.count = Some(value);
            }
        }
    }

    for ((family, labels), state) in &histos {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = -1.0;
        for &(bound, cum) in &state.buckets {
            if bound <= prev_bound {
                return Err(format!("{family}{{{labels}}}: le bounds not increasing"));
            }
            if cum < prev_cum {
                return Err(format!("{family}{{{labels}}}: bucket counts decrease"));
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        match (state.buckets.last(), state.count) {
            (Some(&(bound, cum)), Some(count)) => {
                if !bound.is_infinite() {
                    return Err(format!("{family}{{{labels}}}: missing +Inf bucket"));
                }
                if (cum - count).abs() > 1e-9 {
                    return Err(format!("{family}{{{labels}}}: +Inf bucket != _count"));
                }
            }
            (Some(_), None) => return Err(format!("{family}{{{labels}}}: missing _count")),
            (None, _) => return Err(format!("{family}{{{labels}}}: no buckets")),
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter_with("ratel_test_total", "a counter", &[("route", "gpu->host")]);
        c.add(3);
        // Re-registration resolves the same sample.
        reg.counter_with("ratel_test_total", "a counter", &[("route", "gpu->host")])
            .inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("ratel_test_gauge", "a gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let h = reg.histogram("ratel_test_seconds", "a histogram");
        h.record(3e-6);
        h.record(1.0);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_upper_bound(0.99) >= 1.0);

        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE ratel_test_total counter"));
        assert!(text.contains("ratel_test_total{route=\"gpu->host\"} 4"));
        assert!(text.contains("ratel_test_seconds_bucket"));
        let n = validate_prometheus(&text).expect("well-formed export");
        assert!(n > HISTOGRAM_BUCKETS, "histogram buckets counted: {n}");

        let jsonl = reg.jsonl();
        assert!(jsonl.lines().count() >= 3);
        assert!(jsonl.contains("\"p95\""));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("ratel_test_total", "c");
        let _ = reg.gauge("ratel_test_total", "g");
    }

    #[test]
    fn validator_rejects_malformed_exports() {
        assert!(validate_prometheus("ratel_x 1\n").is_err()); // no TYPE
        let ok = "# TYPE ratel_x counter\nratel_x 1\n";
        assert_eq!(validate_prometheus(ok).unwrap(), 1);
        assert!(validate_prometheus("# TYPE ratel_x counter\nratel_x -1\n").is_err());
        assert!(validate_prometheus("# TYPE ratel_x counter\nratel_x{a=b} 1\n").is_err());
        assert!(validate_prometheus("# TYPE 9bad counter\n").is_err());
        // Histogram with decreasing cumulative buckets.
        let bad_histo = "# TYPE ratel_h histogram\n\
                         ratel_h_bucket{le=\"0.1\"} 5\n\
                         ratel_h_bucket{le=\"+Inf\"} 3\n\
                         ratel_h_sum 1\nratel_h_count 3\n";
        assert!(validate_prometheus(bad_histo).is_err());
        // +Inf bucket must equal _count.
        let bad_count = "# TYPE ratel_h histogram\n\
                         ratel_h_bucket{le=\"+Inf\"} 3\n\
                         ratel_h_sum 1\nratel_h_count 4\n";
        assert!(validate_prometheus(bad_count).is_err());
    }

    #[test]
    fn pow2_quantiles_match_bucket_bounds() {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[0] = 50; // <= 2µs
        buckets[10] = 49; // ~1-2ms
        buckets[20] = 1; // ~1-2s
        let p50 = pow2_quantile_upper_bound(&buckets, HISTOGRAM_BASE_SECONDS, 0.50);
        assert_eq!(p50, HISTOGRAM_BASE_SECONDS * 2.0);
        let p95 = pow2_quantile_upper_bound(&buckets, HISTOGRAM_BASE_SECONDS, 0.95);
        assert_eq!(p95, HISTOGRAM_BASE_SECONDS * (1u64 << 11) as f64);
        let p100 = pow2_quantile_upper_bound(&buckets, HISTOGRAM_BASE_SECONDS, 1.0);
        assert_eq!(p100, HISTOGRAM_BASE_SECONDS * (1u64 << 21) as f64);
        assert_eq!(pow2_quantile_upper_bound(&[0; 4], 1e-6, 0.5), 0.0);
    }
}
