//! Simulation results: makespan, per-resource busy time, per-stage windows
//! and utilizations — the raw material for the paper's Fig. 1 breakdowns.

use crate::graph::{ResourceId, Stage, TaskGraph, TaskId};

/// Busy-time accounting for one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceUsage {
    /// Resource name as registered with the graph.
    pub name: String,
    /// Total seconds the resource was serving tasks.
    pub busy: f64,
    /// Busy seconds attributed to each stage (indexed by `Stage::ALL`).
    pub busy_by_stage: [f64; 3],
}

/// Timing of one stage across the whole iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReport {
    /// Stage this row describes.
    pub stage: Stage,
    /// Earliest task start in the stage (0 if the stage is empty).
    pub start: f64,
    /// Latest task finish in the stage.
    pub end: f64,
}

impl StageReport {
    /// Wall-clock span of the stage window.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// One task's slot in the execution timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// The task.
    pub task: TaskId,
    /// Resource it ran on.
    pub resource_id: ResourceId,
    /// Resource name as registered with the graph.
    pub resource: String,
    /// Stage tag.
    pub stage: Stage,
    /// Start time (seconds).
    pub start: f64,
    /// Finish time (seconds).
    pub finish: f64,
    /// Optional label from the graph builder.
    pub label: Option<String>,
}

impl TimelineEntry {
    /// Seconds the task occupied its resource.
    pub fn duration(&self) -> f64 {
        (self.finish - self.start).max(0.0)
    }

    /// The label, or a generated `task N` fallback.
    pub fn display_label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("task {}", self.task.0))
    }
}

/// The full result of simulating a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total wall-clock time until the last task finished.
    pub makespan: f64,
    /// Per-resource busy accounting, indexed by `ResourceId`.
    pub resources: Vec<ResourceUsage>,
    /// Per-stage windows, indexed as `Stage::ALL`.
    pub stages: [StageReport; 3],
    start: Vec<f64>,
    finish: Vec<f64>,
    timeline: Vec<TimelineEntry>,
}

impl SimReport {
    pub(crate) fn build(graph: &TaskGraph, start: &[f64], finish: &[f64]) -> Self {
        let makespan = finish.iter().copied().fold(0.0, f64::max);

        let mut resources: Vec<ResourceUsage> = graph
            .resources
            .iter()
            .map(|name| ResourceUsage {
                name: name.clone(),
                busy: 0.0,
                busy_by_stage: [0.0; 3],
            })
            .collect();

        let stage_index = |s: Stage| s.index();

        let mut windows: [(f64, f64); 3] = [(f64::INFINITY, 0.0); 3];
        for (i, t) in graph.tasks.iter().enumerate() {
            let r = &mut resources[t.resource.0];
            r.busy += t.service;
            let si = stage_index(t.stage);
            r.busy_by_stage[si] += t.service;
            windows[si].0 = windows[si].0.min(start[i]);
            windows[si].1 = windows[si].1.max(finish[i]);
        }

        let stages = [0, 1, 2].map(|si| {
            let (s, e) = windows[si];
            StageReport {
                stage: Stage::ALL[si],
                start: if s.is_finite() { s } else { 0.0 },
                end: e,
            }
        });

        let mut timeline: Vec<TimelineEntry> = graph
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TimelineEntry {
                task: TaskId(i),
                resource_id: t.resource,
                resource: graph.resources[t.resource.0].clone(),
                stage: t.stage,
                start: start[i],
                finish: finish[i],
                label: t.label.clone(),
            })
            .collect();
        timeline.sort_by(|a, b| a.start.total_cmp(&b.start));

        SimReport {
            makespan,
            resources,
            stages,
            start: start.to_vec(),
            finish: finish.to_vec(),
            timeline,
        }
    }

    /// The execution timeline, sorted by start time.
    pub fn timeline(&self) -> &[TimelineEntry] {
        &self.timeline
    }

    /// Renders an ASCII Gantt chart, one row per resource, `width`
    /// character cells across the makespan. Cell glyphs encode the busy
    /// stage: `F` forward, `B` backward, `O` optimizer, `.` idle.
    pub fn render_gantt(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let width = width.max(10);
        let mut out = String::new();
        let name_w = self
            .resources
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>name_w$}  0s{}{:.1}s",
            "",
            " ".repeat(width.saturating_sub(8)),
            self.makespan
        );
        for (ri, res) in self.resources.iter().enumerate() {
            let mut row = vec!['.'; width];
            for e in &self.timeline {
                if e.resource != res.name || self.makespan == 0.0 {
                    continue;
                }
                let a = ((e.start / self.makespan) * width as f64).floor() as usize;
                let b = ((e.finish / self.makespan) * width as f64).ceil() as usize;
                let glyph = match e.stage {
                    Stage::Forward => 'F',
                    Stage::Backward => 'B',
                    Stage::Optimizer => 'O',
                };
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = glyph;
                }
            }
            let _ = writeln!(
                out,
                "{:>name_w$}  {}",
                res.name,
                row.iter().collect::<String>()
            );
            let _ = ri;
        }
        out
    }

    /// Start time of a task.
    pub fn task_start(&self, id: TaskId) -> f64 {
        self.start[id.0]
    }

    /// Finish time of a task.
    pub fn task_finish(&self, id: TaskId) -> f64 {
        self.finish[id.0]
    }

    /// Busy fraction of `resource` over the whole makespan (0 if empty).
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.resources[resource.0].busy / self.makespan
        }
    }

    /// Busy fraction of `resource` within a stage's window — the paper's
    /// per-stage "PCIe utilization" numbers in Fig. 1.
    pub fn stage_utilization(&self, resource: ResourceId, stage: Stage) -> f64 {
        let si = stage.index();
        let d = self.stages[si].duration();
        if d == 0.0 {
            0.0
        } else {
            self.resources[resource.0].busy_by_stage[si] / d
        }
    }

    /// The stage window report for `stage`.
    pub fn stage(&self, stage: Stage) -> StageReport {
        let si = stage.index();
        self.stages[si]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::graph::TaskGraph;

    #[test]
    fn stage_windows_and_utilization() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let pcie = g.add_resource("pcie");
        let f = g.add_task(gpu, 2.0, Stage::Forward, &[]);
        let t = g.add_task(pcie, 1.0, Stage::Forward, &[f]);
        let b = g.add_task(gpu, 4.0, Stage::Backward, &[t]);
        let _ = b;
        let r = simulate(&g);
        assert_eq!(r.makespan, 7.0);
        assert_eq!(r.stage(Stage::Forward).start, 0.0);
        assert_eq!(r.stage(Stage::Forward).end, 3.0);
        assert_eq!(r.stage(Stage::Backward).duration(), 4.0);
        // GPU busy 2s of the 3s forward window.
        assert!((r.stage_utilization(gpu, Stage::Forward) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.stage_utilization(gpu, Stage::Backward), 1.0);
        assert_eq!(r.stage_utilization(pcie, Stage::Backward), 0.0);
        // Whole-run utilization: gpu busy 6 of 7 seconds.
        assert!((r.utilization(gpu) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stage_reports_zero() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        g.add_task(gpu, 1.0, Stage::Forward, &[]);
        let r = simulate(&g);
        assert_eq!(r.stage(Stage::Optimizer).duration(), 0.0);
        assert_eq!(r.stage_utilization(gpu, Stage::Optimizer), 0.0);
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use crate::engine::simulate;
    use crate::graph::TaskGraph;

    fn demo_report() -> SimReport {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let pcie = g.add_resource("pcie");
        let f = g.add_task(gpu, 2.0, Stage::Forward, &[]);
        g.set_label(f, "fwd block0");
        let t = g.add_task(pcie, 1.0, Stage::Forward, &[f]);
        g.add_task(gpu, 3.0, Stage::Backward, &[t]);
        simulate(&g)
    }

    #[test]
    fn timeline_is_sorted_and_labeled() {
        let r = demo_report();
        let tl = r.timeline();
        assert_eq!(tl.len(), 3);
        for w in tl.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(tl[0].label.as_deref(), Some("fwd block0"));
        assert_eq!(tl[0].resource, "gpu");
        assert_eq!(tl[1].start, 2.0);
    }

    #[test]
    fn gantt_rows_cover_busy_spans() {
        let r = demo_report();
        let chart = r.render_gantt(60);
        let gpu_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("gpu"))
            .unwrap();
        assert!(gpu_row.contains('F') && gpu_row.contains('B'));
        let pcie_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("pcie"))
            .unwrap();
        assert!(pcie_row.contains('F') && !pcie_row.contains('B'));
    }
}
