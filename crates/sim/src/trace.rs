//! Trace export and utilization analysis over a finished [`SimReport`].
//!
//! Three consumers share the timeline the engine records:
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON (`ph: "X"` duration
//!   events, one track per resource, stage-colored slices) loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * [`ascii_timeline`] — a terminal Gantt with per-resource utilization.
//! * [`utilization_breakdown`] / [`analyze_bubbles`] — per-resource,
//!   per-stage busy fractions and an idle-gap ("bubble") analyzer that
//!   names the longest stalls on the critical resource.

use std::fmt::Write as _;

use crate::graph::{ResourceId, Stage};
use crate::report::{SimReport, TimelineEntry};

/// Microseconds per simulated second in the Chrome trace. Trace-event
/// timestamps are integers in microseconds; simulated seconds map 1:1.
const US_PER_SEC: f64 = 1e6;

/// Substrate-neutral span classification — a superset of the simulator's
/// three-stage [`Stage`] enum, so *measured* engine spans (transfers,
/// prefetches, bookkeeping) render through the same writers as simulated
/// tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Forward compute.
    Forward,
    /// Backward compute.
    Backward,
    /// Optimizer work.
    Optimizer,
    /// An inter-tier data transfer (measured timelines only).
    Transfer,
    /// Parameter/state prefetch (measured timelines only).
    Prefetch,
    /// Anything else (scaler decisions, skips, bookkeeping).
    Other,
}

impl SpanKind {
    /// Short stable name used as the trace-event category.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Forward => "forward",
            SpanKind::Backward => "backward",
            SpanKind::Optimizer => "optimizer",
            SpanKind::Transfer => "transfer",
            SpanKind::Prefetch => "prefetch",
            SpanKind::Other => "other",
        }
    }

    /// Single-character Gantt glyph.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Forward => 'F',
            SpanKind::Backward => 'B',
            SpanKind::Optimizer => 'O',
            SpanKind::Transfer => 'T',
            SpanKind::Prefetch => 'P',
            SpanKind::Other => '#',
        }
    }

    /// Chrome trace-event reserved color name (cname).
    fn color(self) -> &'static str {
        match self {
            SpanKind::Forward => "thread_state_running",
            SpanKind::Backward => "thread_state_iowait",
            SpanKind::Optimizer => "thread_state_uninterruptible",
            SpanKind::Transfer => "thread_state_runnable",
            SpanKind::Prefetch => "thread_state_sleeping",
            SpanKind::Other => "thread_state_unknown",
        }
    }
}

impl From<Stage> for SpanKind {
    fn from(s: Stage) -> Self {
        match s {
            Stage::Forward => SpanKind::Forward,
            Stage::Backward => SpanKind::Backward,
            Stage::Optimizer => SpanKind::Optimizer,
        }
    }
}

/// One slice on a [`Timeline`] track.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSpan {
    /// Index into [`Timeline::tracks`].
    pub track: usize,
    /// Display label (task or blob name).
    pub label: String,
    /// Classification for coloring/categorizing.
    pub kind: SpanKind,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
    /// Simulator task id, if the span came from a [`SimReport`].
    pub task: Option<usize>,
    /// Payload size, if the span is a data transfer.
    pub bytes: Option<u64>,
}

impl TimelineSpan {
    /// Span duration in seconds (non-negative).
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// A producer→consumer dependency arrow between two points on a
/// timeline — e.g. a parameter prefetch feeding the forward pass that
/// consumes the staged blob. Rendered as Chrome trace *flow events*
/// (`ph: "s"` at the source, `ph: "f"` at the destination), which
/// Perfetto draws as arrows across tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvent {
    /// Arrow label (shared by both endpoints).
    pub name: String,
    /// Source track index (into [`Timeline::tracks`]).
    pub from_track: usize,
    /// Source timestamp, seconds.
    pub from_ts: f64,
    /// Destination track index.
    pub to_track: usize,
    /// Destination timestamp, seconds.
    pub to_ts: f64,
}

/// A substrate-neutral execution timeline: named tracks holding labeled,
/// classified spans. Both the simulator ([`Timeline::from_sim`]) and the
/// real engine (via its telemetry recorder) produce these, so one Chrome
/// trace can show a predicted and a measured iteration side by side
/// ([`chrome_trace_json_timelines`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Process-level name in the Chrome trace (e.g. `"simulated"`,
    /// `"measured"`). An empty name suppresses the `process_name`
    /// metadata event, which keeps single-report exports minimal.
    pub name: String,
    /// Track (row) names, in display order.
    pub tracks: Vec<String>,
    /// The spans; need not be sorted.
    pub spans: Vec<TimelineSpan>,
    /// Cross-track dependency arrows (may be empty).
    pub flows: Vec<FlowEvent>,
}

impl Timeline {
    /// An empty timeline with the given process name.
    pub fn new(name: impl Into<String>) -> Self {
        Timeline {
            name: name.into(),
            tracks: Vec::new(),
            spans: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Index of the track named `name`, adding it if new.
    pub fn track(&mut self, name: &str) -> usize {
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            return i;
        }
        self.tracks.push(name.to_string());
        self.tracks.len() - 1
    }

    /// Converts a finished simulation into a timeline (anonymous name;
    /// one track per resource, spans in start order).
    pub fn from_sim(report: &SimReport) -> Self {
        let mut tl = Timeline::new("");
        for r in &report.resources {
            tl.tracks.push(r.name.clone());
        }
        for e in report.timeline() {
            tl.spans.push(TimelineSpan {
                track: e.resource_id.0,
                label: e.display_label(),
                kind: e.stage.into(),
                start: e.start,
                end: e.finish,
                task: Some(e.task.0),
                bytes: None,
            });
        }
        tl
    }

    /// Latest span end (0 for an empty timeline).
    pub fn end(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Shifts all spans so the earliest start sits at t=0 — used to align
    /// a measured timeline (whose clock starts at recorder creation) with
    /// a simulated one (whose clock starts at the iteration).
    pub fn shift_to_zero(&mut self) {
        let t0 = self
            .spans
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        if t0.is_finite() && t0 != 0.0 {
            for s in &mut self.spans {
                s.start -= t0;
                s.end -= t0;
            }
            for f in &mut self.flows {
                f.from_ts -= t0;
                f.to_ts -= t0;
            }
        }
    }

    /// Renders this timeline as an ASCII Gantt: one row per track, `width`
    /// cells across [`Timeline::end`]; glyphs from [`SpanKind::glyph`],
    /// `.` for idle. The same chart shape as `SimReport::render_gantt`,
    /// but substrate-neutral.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.end();
        let name_w = self.tracks.iter().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>name_w$}  0s{}{:.3}s",
            "",
            " ".repeat(width.saturating_sub(8)),
            end
        );
        for (ti, track) in self.tracks.iter().enumerate() {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.track == ti) {
                if end == 0.0 {
                    continue;
                }
                let a = ((s.start / end) * width as f64).floor() as usize;
                let b = ((s.end / end) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = s.kind.glyph();
                }
            }
            let _ = writeln!(out, "{track:>name_w$}  {}", row.iter().collect::<String>());
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the report's timeline as Chrome trace-event JSON.
///
/// One track (`tid`) per resource, named via `thread_name` metadata
/// events; every task becomes a complete (`ph: "X"`) slice colored by
/// stage, carrying its stage and task id in `args`. The output loads
/// directly in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(report: &SimReport) -> String {
    chrome_trace_json_timelines(&[Timeline::from_sim(report)])
}

/// Serializes any number of [`Timeline`]s into one Chrome trace-event
/// JSON document: each timeline becomes a process (`pid` = its index,
/// named by `process_name` metadata when [`Timeline::name`] is set), each
/// track a thread. Loading a simulated and a measured timeline into one
/// trace is how the sim-vs-real validator renders its side-by-side view.
pub fn chrome_trace_json_timelines(timelines: &[Timeline]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for (pid, tl) in timelines.iter().enumerate() {
        if !tl.name.is_empty() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(&tl.name)
                ),
                &mut out,
                &mut first,
            );
        }
        for (ti, track) in tl.tracks.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{ti},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(track)
                ),
                &mut out,
                &mut first,
            );
        }
    }
    for (pid, tl) in timelines.iter().enumerate() {
        for s in &tl.spans {
            let ts = s.start * US_PER_SEC;
            let dur = s.duration() * US_PER_SEC;
            let mut args = format!("\"stage\":\"{}\"", s.kind.name());
            if let Some(task) = s.task {
                let _ = write!(args, ",\"task\":{task}");
            }
            if let Some(bytes) = s.bytes {
                let _ = write!(args, ",\"bytes\":{bytes}");
            }
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                     \"name\":\"{name}\",\"cat\":\"{cat}\",\"cname\":\"{cname}\",\
                     \"args\":{{{args}}}}}",
                    tid = s.track,
                    name = json_escape(&s.label),
                    cat = s.kind.name(),
                    cname = s.kind.color(),
                ),
                &mut out,
                &mut first,
            );
        }
    }
    // Flow arrows: a `ph:"s"` start and a `ph:"f"` finish (binding point
    // "e" = enclosing slice) sharing one id per arrow. Ids are unique
    // across timelines so two processes' arrows never merge.
    let mut flow_id = 0usize;
    for (pid, tl) in timelines.iter().enumerate() {
        for f in &tl.flows {
            flow_id += 1;
            push(
                format!(
                    "{{\"ph\":\"s\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
                     \"id\":{flow_id},\"name\":\"{name}\",\"cat\":\"flow\"}}",
                    tid = f.from_track,
                    ts = f.from_ts * US_PER_SEC,
                    name = json_escape(&f.name),
                ),
                &mut out,
                &mut first,
            );
            push(
                format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
                     \"id\":{flow_id},\"name\":\"{name}\",\"cat\":\"flow\"}}",
                    tid = f.to_track,
                    ts = f.to_ts * US_PER_SEC,
                    name = json_escape(&f.name),
                ),
                &mut out,
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// One resource's share of the run, overall and per stage.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationRow {
    /// The resource.
    pub resource: ResourceId,
    /// Resource name as registered with the graph.
    pub name: String,
    /// Total busy seconds.
    pub busy: f64,
    /// Busy fraction of the makespan (0 when the makespan is 0).
    pub utilization: f64,
    /// Busy seconds attributed to each stage (indexed by `Stage::ALL`).
    pub busy_by_stage: [f64; 3],
}

/// Per-resource utilization breakdown, ordered by descending busy time —
/// the first row is the critical (most-loaded) resource.
pub fn utilization_breakdown(report: &SimReport) -> Vec<UtilizationRow> {
    let mut rows: Vec<UtilizationRow> = report
        .resources
        .iter()
        .enumerate()
        .map(|(ri, r)| UtilizationRow {
            resource: ResourceId(ri),
            name: r.name.clone(),
            busy: r.busy,
            utilization: if report.makespan > 0.0 {
                r.busy / report.makespan
            } else {
                0.0
            },
            busy_by_stage: r.busy_by_stage,
        })
        .collect();
    rows.sort_by(|a, b| b.busy.total_cmp(&a.busy));
    rows
}

/// Renders [`utilization_breakdown`] as an aligned text table.
pub fn utilization_table(report: &SimReport) -> String {
    let rows = utilization_breakdown(report);
    let name_w = rows
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(0)
        .max("resource".len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>6}  {:>8}  {:>8}  {:>8}",
        "resource", "busy", "util", "fwd", "bwd", "opt"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7.3}s  {:>5.1}%  {:>7.3}s  {:>7.3}s  {:>7.3}s",
            r.name,
            r.busy,
            r.utilization * 100.0,
            r.busy_by_stage[0],
            r.busy_by_stage[1],
            r.busy_by_stage[2],
        );
    }
    out
}

/// An idle gap on one resource between two busy slices (or between the
/// run's boundaries and the resource's first/last task).
#[derive(Debug, Clone, PartialEq)]
pub struct Bubble {
    /// The resource that sat idle.
    pub resource: ResourceId,
    /// When the gap opened (seconds).
    pub start: f64,
    /// When the gap closed (seconds).
    pub end: f64,
    /// Label of the task whose finish opened the gap, if any.
    pub after: Option<String>,
    /// Label of the task whose start closed the gap, if any.
    pub before: Option<String>,
}

impl Bubble {
    /// Idle seconds in the gap.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// All idle gaps longer than `min_gap` seconds on `resource`, longest
/// first. Includes the lead-in before the resource's first task and the
/// tail after its last.
pub fn bubbles(report: &SimReport, resource: ResourceId, min_gap: f64) -> Vec<Bubble> {
    let mut slices: Vec<&TimelineEntry> = report
        .timeline()
        .iter()
        .filter(|e| e.resource_id == resource)
        .collect();
    slices.sort_by(|a, b| a.start.total_cmp(&b.start));

    let mut out = Vec::new();
    let mut cursor = 0.0_f64;
    let mut after: Option<String> = None;
    for s in &slices {
        if s.start - cursor > min_gap {
            out.push(Bubble {
                resource,
                start: cursor,
                end: s.start,
                after: after.clone(),
                before: Some(s.display_label()),
            });
        }
        if s.finish > cursor {
            cursor = s.finish;
            after = Some(s.display_label());
        }
    }
    if report.makespan - cursor > min_gap && !slices.is_empty() {
        out.push(Bubble {
            resource,
            start: cursor,
            end: report.makespan,
            after,
            before: None,
        });
    }
    out.sort_by(|a, b| b.duration().total_cmp(&a.duration()));
    out
}

/// Bubble analysis for one resource: its idle gaps and totals.
#[derive(Debug, Clone, PartialEq)]
pub struct BubbleReport {
    /// The analyzed resource (the critical one in [`analyze_bubbles`]).
    pub resource: ResourceId,
    /// Resource name.
    pub name: String,
    /// Idle gaps, longest first.
    pub bubbles: Vec<Bubble>,
    /// Total idle seconds across all gaps.
    pub idle_total: f64,
    /// Idle fraction of the makespan.
    pub idle_fraction: f64,
}

/// The most-loaded resource — the one whose stalls bound the iteration.
/// `None` for an empty report.
pub fn critical_resource(report: &SimReport) -> Option<ResourceId> {
    report
        .resources
        .iter()
        .enumerate()
        .filter(|(_, r)| r.busy > 0.0)
        .max_by(|(_, a), (_, b)| a.busy.total_cmp(&b.busy))
        .map(|(ri, _)| ResourceId(ri))
}

/// Finds the critical resource and its idle gaps longer than `min_gap`
/// seconds. Returns `None` when no resource did any work.
pub fn analyze_bubbles(report: &SimReport, min_gap: f64) -> Option<BubbleReport> {
    let resource = critical_resource(report)?;
    let bubbles = bubbles(report, resource, min_gap);
    let idle_total: f64 = bubbles.iter().map(Bubble::duration).sum();
    Some(BubbleReport {
        resource,
        name: report.resources[resource.0].name.clone(),
        bubbles,
        idle_total,
        idle_fraction: if report.makespan > 0.0 {
            idle_total / report.makespan
        } else {
            0.0
        },
    })
}

/// Renders [`analyze_bubbles`] as text, naming the `top_n` longest stalls
/// on the critical resource and the slices bracketing each.
pub fn bubble_summary(report: &SimReport, top_n: usize) -> String {
    let Some(analysis) = analyze_bubbles(report, 0.0) else {
        return String::from("no busy resources\n");
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical resource: {} (idle {:.3}s, {:.1}% of {:.3}s makespan)",
        analysis.name,
        analysis.idle_total,
        analysis.idle_fraction * 100.0,
        report.makespan,
    );
    for b in analysis.bubbles.iter().take(top_n) {
        let after = b.after.as_deref().unwrap_or("run start");
        let before = b.before.as_deref().unwrap_or("run end");
        let _ = writeln!(
            out,
            "  bubble {:>7.3}s [{:.3}s..{:.3}s] after `{}` before `{}`",
            b.duration(),
            b.start,
            b.end,
            after,
            before,
        );
    }
    out
}

/// Renders an ASCII timeline: the stage-glyph Gantt rows from
/// [`SimReport::render_gantt`] plus a utilization column per resource and
/// a legend. `width` is the chart width in character cells.
pub fn ascii_timeline(report: &SimReport, width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "makespan {:.3}s   legend: F forward, B backward, O optimizer, . idle",
        report.makespan
    );
    let gantt = report.render_gantt(width);
    let mut lines = gantt.lines();
    if let Some(header) = lines.next() {
        let _ = writeln!(out, "{header}");
    }
    // Gantt rows come out in ResourceId order; annotate each with its
    // busy fraction.
    for (ri, line) in lines.enumerate() {
        let util = report.utilization(ResourceId(ri)) * 100.0;
        let _ = writeln!(out, "{line}  {util:>5.1}%");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::graph::{Stage, TaskGraph};

    /// gpu: [0,2) fwd, idle [2,3), [3,6) bwd; pcie: [2,3).
    fn demo() -> SimReport {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let pcie = g.add_resource("pcie");
        let f = g.add_task_labeled(gpu, 2.0, Stage::Forward, &[], "fwd L0");
        let t = g.add_task_labeled(pcie, 1.0, Stage::Forward, &[f], "fetch L1");
        g.add_task_labeled(gpu, 3.0, Stage::Backward, &[t], "bwd L1");
        simulate(&g)
    }

    #[test]
    fn chrome_trace_has_tracks_and_slices() {
        let r = demo();
        let json = chrome_trace_json(&r);
        // One metadata event per resource, one X event per task.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"args\":{\"name\":\"gpu\"}"));
        assert!(json.contains("\"args\":{\"name\":\"pcie\"}"));
        assert!(json.contains("\"name\":\"fwd L0\""));
        // bwd L1 runs [3,6)s -> ts 3e6 us, dur 3e6 us on tid 0.
        assert!(json.contains("\"tid\":0,\"ts\":3000000.000,\"dur\":3000000.000"));
        assert!(json.contains("\"cat\":\"backward\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_emits_flow_arrow_pairs() {
        let mut tl = Timeline::new("measured");
        let pf = tl.track("param-prefetch");
        let gpu = tl.track("gpu");
        tl.flows.push(FlowEvent {
            name: "pf L1".into(),
            from_track: pf,
            from_ts: 0.5,
            to_track: gpu,
            to_ts: 1.25,
        });
        let json = chrome_trace_json_timelines(&[tl]);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\",\"bp\":\"e\"").count(), 1);
        // Both endpoints share the arrow's id and name.
        assert_eq!(json.matches("\"id\":1,\"name\":\"pf L1\"").count(), 2);
        assert!(json.contains("\"ts\":500000.000"));
        assert!(json.contains("\"ts\":1250000.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn shift_to_zero_moves_flows_with_spans() {
        let mut tl = Timeline::new("t");
        let a = tl.track("a");
        tl.spans.push(TimelineSpan {
            track: a,
            label: "x".into(),
            kind: SpanKind::Forward,
            start: 10.0,
            end: 11.0,
            task: None,
            bytes: None,
        });
        tl.flows.push(FlowEvent {
            name: "f".into(),
            from_track: a,
            from_ts: 10.25,
            to_track: a,
            to_ts: 10.75,
        });
        tl.shift_to_zero();
        assert_eq!(tl.spans[0].start, 0.0);
        assert!((tl.flows[0].from_ts - 0.25).abs() < 1e-12);
        assert!((tl.flows[0].to_ts - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_escapes_labels() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("weird \"res\"");
        g.add_task_labeled(r, 1.0, Stage::Forward, &[], "a\\b\n\"c\"");
        let json = chrome_trace_json(&simulate(&g));
        assert!(json.contains("weird \\\"res\\\""));
        assert!(json.contains("a\\\\b\\n\\\"c\\\""));
    }

    #[test]
    fn utilization_rows_are_sorted_and_sum() {
        let r = demo();
        let rows = utilization_breakdown(&r);
        assert_eq!(rows[0].name, "gpu"); // 5s busy > pcie 1s
        assert!((rows[0].busy - 5.0).abs() < 1e-12);
        assert!((rows[0].utilization - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(rows[0].busy_by_stage, [2.0, 3.0, 0.0]);
        let table = utilization_table(&r);
        assert!(table.contains("gpu"));
        assert!(table.contains("83.3%"));
    }

    #[test]
    fn bubbles_find_the_gap_and_name_its_neighbors() {
        let r = demo();
        let gpu = ResourceId(0);
        let bs = bubbles(&r, gpu, 0.0);
        assert_eq!(bs.len(), 1);
        assert_eq!((bs[0].start, bs[0].end), (2.0, 3.0));
        assert_eq!(bs[0].after.as_deref(), Some("fwd L0"));
        assert_eq!(bs[0].before.as_deref(), Some("bwd L1"));
        // min_gap filters it out.
        assert!(bubbles(&r, gpu, 1.5).is_empty());
        // pcie idles [0,2) and [3,6).
        let pcie = bubbles(&r, ResourceId(1), 0.0);
        assert_eq!(pcie.len(), 2);
        assert_eq!((pcie[0].start, pcie[0].end), (3.0, 6.0)); // longest first
        assert!(pcie[0].before.is_none());
        assert!(pcie[1].after.is_none());
    }

    #[test]
    fn bubble_analysis_targets_the_critical_resource() {
        let r = demo();
        assert_eq!(critical_resource(&r), Some(ResourceId(0)));
        let a = analyze_bubbles(&r, 0.0).unwrap();
        assert_eq!(a.name, "gpu");
        assert!((a.idle_total - 1.0).abs() < 1e-12);
        assert!((a.idle_fraction - 1.0 / 6.0).abs() < 1e-12);
        let text = bubble_summary(&r, 5);
        assert!(text.contains("critical resource: gpu"));
        assert!(text.contains("after `fwd L0` before `bwd L1`"));
    }

    #[test]
    fn empty_report_is_handled() {
        let g = TaskGraph::new();
        let r = simulate(&g);
        assert!(critical_resource(&r).is_none());
        assert!(analyze_bubbles(&r, 0.0).is_none());
        assert!(bubble_summary(&r, 3).contains("no busy resources"));
        let json = chrome_trace_json(&r);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
    }

    #[test]
    fn timeline_from_sim_matches_the_report() {
        let r = demo();
        let tl = Timeline::from_sim(&r);
        assert_eq!(tl.tracks, vec!["gpu", "pcie"]);
        assert_eq!(tl.spans.len(), 3);
        assert!((tl.end() - r.makespan).abs() < 1e-12);
        let bwd = tl.spans.iter().find(|s| s.label == "bwd L1").unwrap();
        assert_eq!(bwd.kind, SpanKind::Backward);
        assert_eq!((bwd.start, bwd.end), (3.0, 6.0));
        assert_eq!(bwd.track, 0);
        assert!(bwd.bytes.is_none());
    }

    #[test]
    fn multi_timeline_trace_gets_one_pid_per_timeline() {
        let mut sim = Timeline::from_sim(&demo());
        sim.name = "simulated".into();
        let mut measured = Timeline::new("measured");
        let gpu = measured.track("gpu");
        let route = measured.track("ssd->host");
        measured.spans.push(TimelineSpan {
            track: gpu,
            label: "fwd L0".into(),
            kind: SpanKind::Forward,
            start: 5.0,
            end: 6.0,
            task: None,
            bytes: None,
        });
        measured.spans.push(TimelineSpan {
            track: route,
            label: "block0/p16".into(),
            kind: SpanKind::Transfer,
            start: 5.5,
            end: 5.9,
            task: None,
            bytes: Some(4096),
        });
        measured.shift_to_zero();
        assert_eq!(measured.spans[0].start, 0.0);

        let json = chrome_trace_json_timelines(&[sim, measured]);
        assert!(json.contains("\"name\":\"process_name\",\"args\":{\"name\":\"simulated\"}"));
        assert!(json.contains("\"name\":\"process_name\",\"args\":{\"name\":\"measured\"}"));
        // The measured spans land on pid 1; the transfer carries bytes but
        // no task id, the compute span neither.
        assert!(json.contains("\"args\":{\"stage\":\"transfer\",\"bytes\":4096}"));
        assert!(json.contains("\"args\":{\"stage\":\"forward\"}"));
        assert!(json.matches("\"pid\":1,").count() >= 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn timeline_gantt_renders_all_kinds() {
        let mut tl = Timeline::new("measured");
        let cpu = tl.track("cpu");
        let route = tl.track("host->ssd");
        tl.spans.push(TimelineSpan {
            track: cpu,
            label: "opt L0".into(),
            kind: SpanKind::Optimizer,
            start: 0.0,
            end: 1.0,
            task: None,
            bytes: None,
        });
        tl.spans.push(TimelineSpan {
            track: route,
            label: "wb".into(),
            kind: SpanKind::Transfer,
            start: 1.0,
            end: 2.0,
            task: None,
            bytes: Some(10),
        });
        let chart = tl.gantt(40);
        let cpu_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("cpu"))
            .unwrap();
        assert!(cpu_row.contains('O') && !cpu_row.contains('T'));
        let route_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("host->ssd"))
            .unwrap();
        assert!(route_row.contains('T') && !route_row.contains('O'));
    }

    #[test]
    fn ascii_timeline_annotates_utilization() {
        let r = demo();
        let text = ascii_timeline(&r, 60);
        assert!(text.contains("makespan 6.000s"));
        assert!(text.contains("legend"));
        let gpu_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("gpu"))
            .unwrap();
        assert!(gpu_line.contains('F') && gpu_line.contains('B'));
        assert!(gpu_line.trim_end().ends_with("83.3%"));
    }
}
