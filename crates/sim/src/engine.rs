//! The discrete-event execution engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{TaskGraph, TaskId};
use crate::report::SimReport;

/// A ready task waiting in a resource's queue, ordered by (ready time, id)
/// so execution is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Waiting {
    ready: f64,
    id: TaskId,
}

impl Eq for Waiting {}

impl Ord for Waiting {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ready
            .total_cmp(&other.ready)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Waiting {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A completion event in the global event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    at: f64,
    id: TaskId,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Executes `graph` to completion and returns timing and utilization data.
///
/// Each resource serves its ready queue one task at a time in
/// (ready-time, insertion) order — a FIFO DMA/stream model. The simulation
/// is deterministic for a given graph.
pub fn simulate(graph: &TaskGraph) -> SimReport {
    let n = graph.tasks.len();
    let mut indegree: Vec<usize> = graph.tasks.iter().map(|t| t.deps.len()).collect();
    let mut successors: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        for d in &t.deps {
            successors[d.0].push(TaskId(i));
        }
    }

    let mut queues: Vec<BinaryHeap<Reverse<Waiting>>> = (0..graph.resources.len())
        .map(|_| BinaryHeap::new())
        .collect();
    let mut resource_free = vec![0.0_f64; graph.resources.len()];
    let mut resource_busy = vec![false; graph.resources.len()];

    let mut start = vec![f64::NAN; n];
    let mut finish = vec![f64::NAN; n];
    let mut events: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();

    let try_start = |r: usize,
                     now: f64,
                     queues: &mut Vec<BinaryHeap<Reverse<Waiting>>>,
                     resource_free: &mut Vec<f64>,
                     resource_busy: &mut Vec<bool>,
                     start: &mut Vec<f64>,
                     finish: &mut Vec<f64>,
                     events: &mut BinaryHeap<Reverse<Completion>>| {
        if resource_busy[r] {
            return;
        }
        if let Some(Reverse(w)) = queues[r].pop() {
            let begin = now.max(resource_free[r]).max(w.ready);
            let end = begin + graph.tasks[w.id.0].service;
            start[w.id.0] = begin;
            finish[w.id.0] = end;
            resource_busy[r] = true;
            resource_free[r] = end;
            events.push(Reverse(Completion { at: end, id: w.id }));
        }
    };

    // Seed: tasks with no dependencies are ready at t=0.
    for (i, t) in graph.tasks.iter().enumerate() {
        if t.deps.is_empty() {
            queues[t.resource.0].push(Reverse(Waiting {
                ready: 0.0,
                id: TaskId(i),
            }));
        }
    }
    for r in 0..graph.resources.len() {
        try_start(
            r,
            0.0,
            &mut queues,
            &mut resource_free,
            &mut resource_busy,
            &mut start,
            &mut finish,
            &mut events,
        );
    }

    let mut completed = 0usize;
    while let Some(Reverse(Completion { at, id })) = events.pop() {
        completed += 1;
        let r = graph.tasks[id.0].resource.0;
        resource_busy[r] = false;
        for &succ in &successors[id.0] {
            indegree[succ.0] -= 1;
            if indegree[succ.0] == 0 {
                let sr = graph.tasks[succ.0].resource.0;
                queues[sr].push(Reverse(Waiting {
                    ready: at,
                    id: succ,
                }));
                try_start(
                    sr,
                    at,
                    &mut queues,
                    &mut resource_free,
                    &mut resource_busy,
                    &mut start,
                    &mut finish,
                    &mut events,
                );
            }
        }
        try_start(
            r,
            at,
            &mut queues,
            &mut resource_free,
            &mut resource_busy,
            &mut start,
            &mut finish,
            &mut events,
        );
    }

    assert_eq!(
        completed, n,
        "deadlock: {} of {n} tasks completed (cycle or orphaned dependency)",
        completed
    );

    SimReport::build(graph, &start, &finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Stage, TaskGraph};

    #[test]
    fn empty_graph_has_zero_makespan() {
        let g = TaskGraph::new();
        let r = simulate(&g);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn serial_chain_sums_service_times() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let a = g.add_task(gpu, 1.0, Stage::Forward, &[]);
        let b = g.add_task(gpu, 2.0, Stage::Forward, &[a]);
        let _ = g.add_task(gpu, 3.0, Stage::Forward, &[b]);
        assert_eq!(simulate(&g).makespan, 6.0);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let pcie = g.add_resource("pcie");
        g.add_task(gpu, 4.0, Stage::Forward, &[]);
        g.add_task(pcie, 3.0, Stage::Forward, &[]);
        assert_eq!(simulate(&g).makespan, 4.0);
    }

    #[test]
    fn contention_serializes_on_one_resource() {
        let mut g = TaskGraph::new();
        let pcie = g.add_resource("pcie");
        g.add_task(pcie, 2.0, Stage::Forward, &[]);
        g.add_task(pcie, 2.0, Stage::Forward, &[]);
        g.add_task(pcie, 2.0, Stage::Forward, &[]);
        assert_eq!(simulate(&g).makespan, 6.0);
    }

    #[test]
    fn fifo_order_is_by_ready_time() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let pcie = g.add_resource("pcie");
        // Producer chain: a (1s) then b (3s) on gpu; transfers depend on
        // each and contend on pcie. t_a is ready at 1, t_b at 4.
        let a = g.add_task(gpu, 1.0, Stage::Forward, &[]);
        let b = g.add_task(gpu, 3.0, Stage::Forward, &[a]);
        let ta = g.add_task(pcie, 5.0, Stage::Forward, &[a]);
        let tb = g.add_task(pcie, 1.0, Stage::Forward, &[b]);
        let r = simulate(&g);
        // ta starts at 1 and holds pcie until 6; tb then runs 6..7.
        assert_eq!(r.task_start(ta), 1.0);
        assert_eq!(r.task_finish(ta), 6.0);
        assert_eq!(r.task_start(tb), 6.0);
        assert_eq!(r.makespan, 7.0);
    }

    #[test]
    fn pipelining_overlaps_compute_and_transfer() {
        // Classic two-stage pipeline: n layers of (compute 1s -> transfer
        // 1s). Makespan should be n + 1, not 2n.
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let pcie = g.add_resource("pcie");
        let mut prev_compute = None;
        for _ in 0..8 {
            let deps: Vec<_> = prev_compute.into_iter().collect();
            let c = g.add_task(gpu, 1.0, Stage::Forward, &deps);
            g.add_task(pcie, 1.0, Stage::Forward, &[c]);
            prev_compute = Some(c);
        }
        assert_eq!(simulate(&g).makespan, 9.0);
    }

    #[test]
    fn diamond_dependencies_join_correctly() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a");
        let r2 = g.add_resource("b");
        let src = g.add_task(r1, 1.0, Stage::Forward, &[]);
        let left = g.add_task(r1, 2.0, Stage::Forward, &[src]);
        let right = g.add_task(r2, 5.0, Stage::Forward, &[src]);
        let join = g.add_task(r1, 1.0, Stage::Backward, &[left, right]);
        let r = simulate(&g);
        assert_eq!(r.task_start(join), 6.0);
        assert_eq!(r.makespan, 7.0);
    }

    #[test]
    fn zero_service_tasks_are_fine() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a");
        let a = g.add_task(r1, 0.0, Stage::Forward, &[]);
        let b = g.add_task(r1, 1.0, Stage::Forward, &[a]);
        let r = simulate(&g);
        assert_eq!(r.task_finish(b), 1.0);
    }
}
