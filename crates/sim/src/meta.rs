//! Optional per-task metadata for static schedule verification.
//!
//! A [`crate::TaskGraph`] is, by itself, just tasks on resources with
//! dependency edges — enough to *simulate* a schedule but not enough to
//! *prove* it safe. The semantic layer `ratel-verify` analyzes without
//! simulating — which logical blob each task reads or writes and at
//! which version, which operation class the task performs, which memory
//! tier it occupies — lives in the shared [`ratel_contract`] crate so
//! the planner, verifier, and engine executor speak the same types
//! without depending on the simulator. This module re-exports it under
//! the historical `ratel_sim::meta` paths.
//!
//! All of it is optional: tasks without metadata simulate exactly as
//! before and are simply invisible to the static passes.

pub use ratel_contract::{
    BlobKey, BlobKind, Edge, MemTier, OpClass, ResidencyAlloc, ResourceClass, TaskMeta,
    VersionedBlob,
};
