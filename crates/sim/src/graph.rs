//! Task-graph construction.

/// Identifies a resource registered with a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Identifies a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// The training stage a task is attributed to, for breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Forward propagation.
    Forward,
    /// Backward propagation (includes recomputation).
    Backward,
    /// Optimizer execution (SSD state I/O + CPU Adam).
    Optimizer,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 3] = [Stage::Forward, Stage::Backward, Stage::Optimizer];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Forward => "forward",
            Stage::Backward => "backward",
            Stage::Optimizer => "optimizer",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub(crate) resource: ResourceId,
    /// Service time in seconds on the bound resource.
    pub(crate) service: f64,
    pub(crate) stage: Stage,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) label: Option<String>,
}

/// A DAG of tasks over named resources.
///
/// Dependencies must refer to already-added tasks, which makes the graph
/// acyclic by construction.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    pub(crate) resources: Vec<String>,
    pub(crate) tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(name.into());
        ResourceId(self.resources.len() - 1)
    }

    /// Adds a task bound to `resource` that occupies it for `service`
    /// seconds once started, attributed to `stage`, ready after `deps`.
    ///
    /// # Panics
    /// If `resource` or any dependency is unknown, or `service` is not a
    /// finite non-negative number.
    pub fn add_task(
        &mut self,
        resource: ResourceId,
        service: f64,
        stage: Stage,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(
            resource.0 < self.resources.len(),
            "unknown resource {resource:?}"
        );
        assert!(
            service.is_finite() && service >= 0.0,
            "invalid service time {service} (resource {})",
            self.resources[resource.0]
        );
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency {d:?} of {id:?} does not exist yet");
        }
        self.tasks.push(Task {
            resource,
            service,
            stage,
            deps: deps.to_vec(),
            label: None,
        });
        id
    }

    /// [`add_task`](Self::add_task) plus a timeline label in one call.
    pub fn add_task_labeled(
        &mut self,
        resource: ResourceId,
        service: f64,
        stage: Stage,
        deps: &[TaskId],
        label: impl Into<String>,
    ) -> TaskId {
        let id = self.add_task(resource, service, stage, deps);
        self.set_label(id, label);
        id
    }

    /// Attaches a human-readable label to a task (shown in timelines).
    pub fn set_label(&mut self, task: TaskId, label: impl Into<String>) {
        self.tasks[task.0].label = Some(label.into());
    }

    /// The label of a task, if any.
    pub fn label(&self, task: TaskId) -> Option<&str> {
        self.tasks[task.0].label.as_deref()
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Name of a registered resource.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0]
    }

    /// Total service time bound to `resource` — a lower bound on the
    /// makespan contribution of that resource.
    pub fn total_service(&self, resource: ResourceId) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.resource == resource)
            .map(|t| t.service)
            .sum()
    }

    /// Length of the longest dependency chain (sum of service times) — a
    /// lower bound on the makespan.
    pub fn critical_path(&self) -> f64 {
        let mut finish = vec![0.0_f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|d| finish[d.0]).fold(0.0_f64, f64::max);
            finish[i] = ready + t.service;
        }
        finish.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_graph() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let a = g.add_task(gpu, 1.0, Stage::Forward, &[]);
        let b = g.add_task(gpu, 2.0, Stage::Forward, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_service(gpu), 3.0);
        assert_eq!(g.critical_path(), 3.0);
        assert_eq!(b, TaskId(1));
    }

    #[test]
    fn critical_path_takes_the_longest_chain() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a");
        let r2 = g.add_resource("b");
        let a = g.add_task(r1, 1.0, Stage::Forward, &[]);
        let b = g.add_task(r2, 5.0, Stage::Forward, &[]);
        let _c = g.add_task(r1, 1.0, Stage::Backward, &[a, b]);
        assert_eq!(g.critical_path(), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependencies_are_rejected() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        g.add_task(r, 1.0, Stage::Forward, &[TaskId(7)]);
    }

    #[test]
    #[should_panic(expected = "invalid service time")]
    fn nan_service_is_rejected() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        g.add_task(r, f64::NAN, Stage::Forward, &[]);
    }
}
