//! Task-graph construction.

use crate::meta::{Edge, ResourceClass, TaskMeta};

// Task/resource identities and the stage attribution are part of the
// shared plan contract: the executor addresses the same `TaskId`s the
// verifier proved safe.
pub use ratel_contract::{ResourceId, Stage, TaskId};

#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub(crate) resource: ResourceId,
    /// Service time in seconds on the bound resource.
    pub(crate) service: f64,
    pub(crate) stage: Stage,
    pub(crate) deps: Vec<TaskId>,
    pub(crate) label: Option<String>,
    pub(crate) meta: Option<TaskMeta>,
}

/// A DAG of tasks over named resources.
///
/// Dependencies must refer to already-added tasks, which makes the graph
/// acyclic by construction.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    pub(crate) resources: Vec<String>,
    pub(crate) resource_classes: Vec<Option<ResourceClass>>,
    pub(crate) tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource and returns its id.
    ///
    /// Resource names are unique: registering a name that already exists
    /// returns the id of the existing resource instead of silently
    /// creating a second queue with the same name (which would split its
    /// traffic across two FIFOs and corrupt per-resource accounting).
    pub fn add_resource(&mut self, name: impl Into<String>) -> ResourceId {
        let name = name.into();
        if let Some(i) = self.resources.iter().position(|r| *r == name) {
            return ResourceId(i);
        }
        self.resources.push(name);
        self.resource_classes.push(None);
        ResourceId(self.resources.len() - 1)
    }

    /// Declares the [`ResourceClass`] of a registered resource, for the
    /// static legality pass. Untyped resources are skipped by verifiers.
    pub fn set_resource_class(&mut self, id: ResourceId, class: ResourceClass) {
        self.resource_classes[id.0] = Some(class);
    }

    /// The declared class of a resource, if any.
    pub fn resource_class(&self, id: ResourceId) -> Option<ResourceClass> {
        self.resource_classes[id.0]
    }

    /// Ids of all registered resources.
    pub fn resource_ids(&self) -> impl Iterator<Item = ResourceId> {
        (0..self.resources.len()).map(ResourceId)
    }

    /// Adds a task bound to `resource` that occupies it for `service`
    /// seconds once started, attributed to `stage`, ready after `deps`.
    ///
    /// # Panics
    /// If `resource` or any dependency is unknown, or `service` is not a
    /// finite non-negative number.
    pub fn add_task(
        &mut self,
        resource: ResourceId,
        service: f64,
        stage: Stage,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(
            resource.0 < self.resources.len(),
            "unknown resource {resource:?}"
        );
        assert!(
            service.is_finite() && service >= 0.0,
            "invalid service time {service} (resource {})",
            self.resources[resource.0]
        );
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependency {d:?} of {id:?} does not exist yet");
        }
        self.tasks.push(Task {
            resource,
            service,
            stage,
            deps: deps.to_vec(),
            label: None,
            meta: None,
        });
        id
    }

    /// [`add_task`](Self::add_task) plus a timeline label in one call.
    pub fn add_task_labeled(
        &mut self,
        resource: ResourceId,
        service: f64,
        stage: Stage,
        deps: &[TaskId],
        label: impl Into<String>,
    ) -> TaskId {
        let id = self.add_task(resource, service, stage, deps);
        self.set_label(id, label);
        id
    }

    /// Attaches a human-readable label to a task (shown in timelines).
    pub fn set_label(&mut self, task: TaskId, label: impl Into<String>) {
        self.tasks[task.0].label = Some(label.into());
    }

    /// The label of a task, if any.
    pub fn label(&self, task: TaskId) -> Option<&str> {
        self.tasks[task.0].label.as_deref()
    }

    /// Attaches semantic metadata to a task for static verification.
    pub fn set_meta(&mut self, task: TaskId, meta: TaskMeta) {
        self.tasks[task.0].meta = Some(meta);
    }

    /// The metadata of a task, if any.
    pub fn meta(&self, task: TaskId) -> Option<&TaskMeta> {
        self.tasks[task.0].meta.as_ref()
    }

    /// Mutable access to a task's metadata, if any. Intended for test
    /// harnesses that perturb annotations (e.g. the mutation suite).
    pub fn meta_mut(&mut self, task: TaskId) -> Option<&mut TaskMeta> {
        self.tasks[task.0].meta.as_mut()
    }

    /// The dependencies of a task.
    pub fn deps(&self, task: TaskId) -> &[TaskId] {
        &self.tasks[task.0].deps
    }

    /// The resource a task is bound to.
    pub fn resource(&self, task: TaskId) -> ResourceId {
        self.tasks[task.0].resource
    }

    /// The stage a task is attributed to.
    pub fn stage(&self, task: TaskId) -> Stage {
        self.tasks[task.0].stage
    }

    /// A task's service time in seconds.
    pub fn service(&self, task: TaskId) -> f64 {
        self.tasks[task.0].service
    }

    /// Ids of all tasks, in insertion (= topological) order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len()).map(TaskId)
    }

    /// All dependency edges in the graph.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.tasks.iter().enumerate().flat_map(|(i, t)| {
            t.deps.iter().map(move |d| Edge {
                from: *d,
                to: TaskId(i),
            })
        })
    }

    /// Adds the direct dependency `dep` to an existing `task`, preserving
    /// the acyclic-by-construction invariant (`dep` must precede `task`
    /// in insertion order). Used by executors to thread pacing edges —
    /// e.g. residency windows — through an already-built plan. Duplicate
    /// edges are ignored.
    ///
    /// # Panics
    /// If `dep` does not precede `task` in insertion order.
    pub fn add_dep(&mut self, task: TaskId, dep: TaskId) {
        assert!(
            dep.0 < task.0,
            "dependency {dep:?} of {task:?} would break topological order"
        );
        let deps = &mut self.tasks[task.0].deps;
        if !deps.contains(&dep) {
            deps.push(dep);
        }
    }

    /// Removes the direct dependency `dep` from `task`, if present.
    /// Returns whether an edge was removed. Intended for mutation-testing
    /// harnesses; the simulator never needs it.
    pub fn remove_dep(&mut self, task: TaskId, dep: TaskId) -> bool {
        let deps = &mut self.tasks[task.0].deps;
        let before = deps.len();
        deps.retain(|d| *d != dep);
        deps.len() != before
    }

    /// Rebinds a task to a different (already-registered) resource.
    /// Intended for mutation-testing harnesses.
    ///
    /// # Panics
    /// If `resource` is unknown.
    pub fn rebind_resource(&mut self, task: TaskId, resource: ResourceId) {
        assert!(
            resource.0 < self.resources.len(),
            "unknown resource {resource:?}"
        );
        self.tasks[task.0].resource = resource;
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Name of a registered resource.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0]
    }

    /// Total service time bound to `resource` — a lower bound on the
    /// makespan contribution of that resource.
    pub fn total_service(&self, resource: ResourceId) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.resource == resource)
            .map(|t| t.service)
            .sum()
    }

    /// Length of the longest dependency chain (sum of service times) — a
    /// lower bound on the makespan.
    pub fn critical_path(&self) -> f64 {
        let mut finish = vec![0.0_f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|d| finish[d.0]).fold(0.0_f64, f64::max);
            finish[i] = ready + t.service;
        }
        finish.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_graph() {
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let a = g.add_task(gpu, 1.0, Stage::Forward, &[]);
        let b = g.add_task(gpu, 2.0, Stage::Forward, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_service(gpu), 3.0);
        assert_eq!(g.critical_path(), 3.0);
        assert_eq!(b, TaskId(1));
    }

    #[test]
    fn critical_path_takes_the_longest_chain() {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a");
        let r2 = g.add_resource("b");
        let a = g.add_task(r1, 1.0, Stage::Forward, &[]);
        let b = g.add_task(r2, 5.0, Stage::Forward, &[]);
        let _c = g.add_task(r1, 1.0, Stage::Backward, &[a, b]);
        assert_eq!(g.critical_path(), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependencies_are_rejected() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        g.add_task(r, 1.0, Stage::Forward, &[TaskId(7)]);
    }

    #[test]
    #[should_panic(expected = "invalid service time")]
    fn nan_service_is_rejected() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        g.add_task(r, f64::NAN, Stage::Forward, &[]);
    }

    #[test]
    fn duplicate_resource_names_are_deduplicated() {
        let mut g = TaskGraph::new();
        let a = g.add_resource("gpu");
        let b = g.add_resource("ssd");
        let a2 = g.add_resource("gpu");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(g.resource_ids().count(), 2);
        // Traffic registered via either id lands on the same queue.
        g.add_task(a, 1.0, Stage::Forward, &[]);
        g.add_task(a2, 2.0, Stage::Forward, &[]);
        assert_eq!(g.total_service(a), 3.0);
    }

    #[test]
    fn resource_classes_round_trip() {
        use crate::meta::ResourceClass;
        let mut g = TaskGraph::new();
        let gpu = g.add_resource("gpu");
        let ssd = g.add_resource("ssd");
        g.set_resource_class(gpu, ResourceClass::GpuCompute);
        assert_eq!(g.resource_class(gpu), Some(ResourceClass::GpuCompute));
        assert_eq!(g.resource_class(ssd), None);
    }

    #[test]
    fn edges_and_accessors_expose_the_graph() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task(r, 1.0, Stage::Forward, &[]);
        let b = g.add_task(r, 2.0, Stage::Backward, &[a]);
        assert_eq!(g.deps(b), &[a]);
        assert_eq!(g.resource(b), r);
        assert_eq!(g.stage(b), Stage::Backward);
        assert_eq!(g.service(b), 2.0);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].from, a);
        assert_eq!(edges[0].to, b);
        assert!(g.remove_dep(b, a));
        assert!(!g.remove_dep(b, a));
        assert!(g.deps(b).is_empty());
    }

    #[test]
    fn meta_round_trips() {
        use crate::meta::{BlobKey, BlobKind, OpClass, TaskMeta, VersionedBlob};
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task(r, 1.0, Stage::Forward, &[]);
        assert!(g.meta(a).is_none());
        let blob = VersionedBlob {
            key: BlobKey::shared(BlobKind::Param16, 0),
            version: 1,
        };
        g.set_meta(a, TaskMeta::new(OpClass::GpuCompute, 0).write(blob));
        assert_eq!(g.meta(a).unwrap().writes, vec![blob]);
        g.meta_mut(a).unwrap().writes[0].version = 2;
        assert_eq!(g.meta(a).unwrap().writes[0].version, 2);
    }
}
