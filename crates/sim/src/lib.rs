#![warn(missing_docs)]
//! A small deterministic discrete-event simulator of intra-server tensor
//! movement.
//!
//! Training-iteration schedules are expressed as a DAG of *tasks*, each
//! bound to one *resource* (GPU compute, each PCIe direction, the SSD
//! array, CPU compute). A resource serves one task at a time in
//! ready-order (FIFO); a task becomes ready when all its dependencies have
//! finished. This mirrors how CUDA streams, DMA engines, and an io_uring
//! SSD queue behave at the granularity the paper reasons about: fully
//! pipelinable, bandwidth-bound, no preemption.
//!
//! The engine reports the makespan, per-resource busy time, and per-stage
//! windows/utilizations — exactly the quantities in the paper's Fig. 1
//! stage breakdowns ("PCIe_G2M: 47%", "Optimizer (23s)") and the GPU-busy
//! percentages of Fig. 2b/2c. The recorded per-task timeline additionally
//! feeds the [`trace`] module: Chrome trace-event JSON export, ASCII
//! timelines, and an idle-gap ("bubble") analyzer.

pub mod engine;
pub mod graph;
pub mod meta;
pub mod report;
pub mod trace;

pub use engine::simulate;
pub use graph::{ResourceId, Stage, TaskGraph, TaskId};
pub use meta::{
    BlobKey, BlobKind, Edge, MemTier, OpClass, ResidencyAlloc, ResourceClass, TaskMeta,
    VersionedBlob,
};
pub use report::{ResourceUsage, SimReport, StageReport, TimelineEntry};
pub use trace::{
    analyze_bubbles, ascii_timeline, bubble_summary, bubbles, chrome_trace_json,
    chrome_trace_json_timelines, critical_resource, utilization_breakdown, utilization_table,
    Bubble, BubbleReport, FlowEvent, SpanKind, Timeline, TimelineSpan, UtilizationRow,
};
