//! NVMe SSD and SSD-array models.
//!
//! The evaluation server carries up to 12 Intel P5510 3.84 TB drives behind
//! PCIe switches. Two properties matter to the pipeline:
//!
//! * aggregate bandwidth grows with the drive count but is capped by the
//!   host-side switch uplink (~32 GB/s measured for 12 drives, Fig. 1a),
//!   which is why Fig. 10a scales near-linearly from 1 to 3 drives and
//!   flattens from 6 to 12;
//! * the array is accounted as *simplex*: reads and writes share the array,
//!   so the paper computes "SSD I/O time as a whole" (note under Eq. 2).

use crate::units::{GB, TB};

/// A single NVMe SSD model.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Unit price in USD (Table VII).
    pub price_usd: f64,
}

impl SsdSpec {
    /// Intel P5510 3.84 TB (Table III / Table VII).
    ///
    /// Per-drive effective rates are calibrated so that 12 drives reach the
    /// paper's measured 32 GB/s aggregate under the host cap.
    pub fn p5510() -> Self {
        SsdSpec {
            name: "Intel P5510 3.84TB",
            capacity_bytes: (3.84 * TB as f64) as u64,
            read_bw: 3.2 * GB as f64,
            write_bw: 2.8 * GB as f64,
            price_usd: 308.0,
        }
    }
}

/// An array of identical SSDs striped for aggregate bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdArray {
    /// The drive model.
    pub spec: SsdSpec,
    /// Number of drives (0 allowed: a server with no SSDs cannot offload to
    /// NVMe at all, which is how FlashNeuron/G10 feasibility checks fail).
    pub count: usize,
    /// Host-side uplink cap shared by all drives, bytes/second per
    /// direction of the host link (reads and writes both cross it).
    pub host_cap: f64,
}

impl SsdArray {
    /// The paper's array: `count` P5510 drives behind a 32 GB/s host uplink.
    pub fn p5510_array(count: usize) -> Self {
        SsdArray {
            spec: SsdSpec::p5510(),
            count,
            host_cap: 32.0 * GB as f64,
        }
    }

    /// Total usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.spec.capacity_bytes * self.count as u64
    }

    /// Aggregate SSD-to-main-memory (read) bandwidth, `BW_S2M` in Table I.
    pub fn read_bw(&self) -> f64 {
        (self.spec.read_bw * self.count as f64).min(self.host_cap)
    }

    /// Aggregate main-memory-to-SSD (write) bandwidth, `BW_M2S` in Table I.
    pub fn write_bw(&self) -> f64 {
        (self.spec.write_bw * self.count as f64).min(self.host_cap)
    }

    /// Seconds to serve a simplex workload of `read_bytes` reads and
    /// `write_bytes` writes: the array serves one direction at a time, so
    /// the times add (this is exactly how `T_S` terms are summed in
    /// Eq. 2/4/5).
    pub fn io_seconds(&self, read_bytes: f64, write_bytes: f64) -> f64 {
        if self.count == 0 {
            if read_bytes == 0.0 && write_bytes == 0.0 {
                return 0.0;
            }
            return f64::INFINITY;
        }
        read_bytes / self.read_bw() + write_bytes / self.write_bw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_drives_hit_the_host_cap() {
        let arr = SsdArray::p5510_array(12);
        assert_eq!(arr.read_bw(), 32.0 * GB as f64);
        assert_eq!(arr.write_bw(), 32.0 * GB as f64);
    }

    #[test]
    fn small_arrays_scale_linearly() {
        let one = SsdArray::p5510_array(1);
        let three = SsdArray::p5510_array(3);
        assert!((three.read_bw() / one.read_bw() - 3.0).abs() < 1e-9);
        assert!((three.write_bw() / one.write_bw() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_scales_with_count() {
        let arr = SsdArray::p5510_array(12);
        assert_eq!(arr.capacity_bytes(), 12 * SsdSpec::p5510().capacity_bytes);
    }

    #[test]
    fn empty_array_cannot_serve_io() {
        let arr = SsdArray::p5510_array(0);
        assert_eq!(arr.io_seconds(0.0, 0.0), 0.0);
        assert!(arr.io_seconds(1.0, 0.0).is_infinite());
    }

    #[test]
    fn simplex_io_adds_directions() {
        let arr = SsdArray::p5510_array(12);
        let t = arr.io_seconds(32e9, 32e9);
        assert!((t - 2.0).abs() < 1e-9);
    }
}
