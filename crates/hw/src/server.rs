//! Whole-server configurations (Table III and its variants).

use crate::cpu::CpuSpec;
use crate::gpu::GpuSpec;
use crate::pcie::PcieLink;
use crate::ssd::SsdArray;
use crate::units::GIB;

/// A commodity server hosting one or more identical GPUs, main memory, and
/// an SSD array — the universe every experiment runs in.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// GPU model installed.
    pub gpu: GpuSpec,
    /// Number of identical GPUs (1 for most experiments; 2/4 for §V-G).
    pub gpu_count: usize,
    /// Main memory capacity in bytes. The paper pins memory to emulate
    /// smaller capacities (§V-B), which we model by just lowering this.
    pub main_memory_bytes: u64,
    /// CPU (socket pair) executing the out-of-core optimizer.
    pub cpu: CpuSpec,
    /// GPU <-> main memory link (per GPU; each GPU has its own x16 slot).
    pub pcie: PcieLink,
    /// The NVMe SSD array, shared by all GPUs.
    pub ssds: SsdArray,
}

impl ServerConfig {
    /// The paper's evaluation server (Table III): RTX 4090, 768 GB DDR4,
    /// PCIe 4.0, 12x Intel P5510.
    pub fn paper_default() -> Self {
        ServerConfig {
            gpu: GpuSpec::rtx4090(),
            gpu_count: 1,
            main_memory_bytes: 768 * GIB,
            cpu: CpuSpec::dual_xeon_5320(),
            pcie: PcieLink::gen4_x16(),
            ssds: SsdArray::p5510_array(12),
        }
    }

    /// The headline low-cost configuration: RTX 4090 + 256 GB main memory.
    pub fn consumer_256g() -> Self {
        ServerConfig {
            main_memory_bytes: 256 * GIB,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different main-memory capacity (bytes).
    pub fn with_main_memory(&self, bytes: u64) -> Self {
        ServerConfig {
            main_memory_bytes: bytes,
            ..self.clone()
        }
    }

    /// Returns a copy with a different GPU model.
    pub fn with_gpu(&self, gpu: GpuSpec) -> Self {
        ServerConfig {
            gpu,
            ..self.clone()
        }
    }

    /// Returns a copy with `count` GPUs (multi-GPU experiments, §V-G).
    pub fn with_gpu_count(&self, count: usize) -> Self {
        ServerConfig {
            gpu_count: count,
            ..self.clone()
        }
    }

    /// Returns a copy with `count` SSDs (Fig. 10 / Fig. 13 sweeps).
    pub fn with_ssd_count(&self, count: usize) -> Self {
        let mut next = self.clone();
        next.ssds.count = count;
        next
    }

    /// Main memory left for the training system after the OS reservation.
    ///
    /// The paper's profiling stage measures "minimum unallocated main
    /// memory" (`MEM_avail`); a few GiB always belong to the kernel, the
    /// page cache floor, and the CUDA runtime.
    pub fn usable_main_memory(&self) -> u64 {
        const OS_RESERVED: u64 = 8 * GIB;
        self.main_memory_bytes.saturating_sub(OS_RESERVED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_iii() {
        let s = ServerConfig::paper_default();
        assert_eq!(s.gpu.name, "RTX 4090");
        assert_eq!(s.main_memory_bytes, 768 * GIB);
        assert_eq!(s.ssds.count, 12);
        assert_eq!(s.gpu_count, 1);
    }

    #[test]
    fn builders_adjust_single_fields() {
        let s = ServerConfig::paper_default()
            .with_main_memory(128 * GIB)
            .with_ssd_count(3)
            .with_gpu(GpuSpec::rtx4080())
            .with_gpu_count(4);
        assert_eq!(s.main_memory_bytes, 128 * GIB);
        assert_eq!(s.ssds.count, 3);
        assert_eq!(s.gpu.name, "RTX 4080");
        assert_eq!(s.gpu_count, 4);
    }

    #[test]
    fn usable_memory_reserves_for_os() {
        let s = ServerConfig::paper_default().with_main_memory(16 * GIB);
        assert_eq!(s.usable_main_memory(), 8 * GIB);
        let tiny = s.with_main_memory(4 * GIB);
        assert_eq!(tiny.usable_main_memory(), 0);
    }
}
