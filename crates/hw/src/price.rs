//! Component and server prices (Table VII) for the cost-effectiveness
//! comparison (§V-I, Fig. 13).

use crate::server::ServerConfig;

/// Price of a DGX-A100 server with 8 NVLink A100-80G GPUs (Table VII).
pub const DGX_A100_PRICE_USD: f64 = 200_000.0;

/// Price of the commodity 4U chassis without GPUs or SSDs (Table VII).
pub const COMMODITY_4U_BASE_USD: f64 = 14_098.0;

/// Price of one NVIDIA RTX 4090 (Table VII).
pub const RTX_4090_PRICE_USD: f64 = 1_600.0;

/// Price of one Intel P5510 SSD (Table VII).
pub const P5510_PRICE_USD: f64 = 308.0;

/// Total price of a commodity server configuration: chassis + GPUs + SSDs.
pub fn commodity_server_price(config: &ServerConfig) -> f64 {
    COMMODITY_4U_BASE_USD
        + config.gpu.price_usd * config.gpu_count as f64
        + config.ssds.spec.price_usd * config.ssds.count as f64
}

/// Cost-effectiveness metric of Fig. 13: throughput (tokens/s) per 1000 USD
/// of server price.
pub fn tokens_per_sec_per_kilodollar(tokens_per_sec: f64, server_price_usd: f64) -> f64 {
    tokens_per_sec / (server_price_usd / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    #[test]
    fn four_gpu_twelve_ssd_server_price() {
        let config = ServerConfig::paper_default().with_gpu_count(4);
        let price = commodity_server_price(&config);
        // 14098 + 4*1600 + 12*308 = 24194
        assert!((price - 24_194.0).abs() < 1e-9);
    }

    #[test]
    fn cost_effectiveness_is_per_kilodollar() {
        let v = tokens_per_sec_per_kilodollar(500.0, 25_000.0);
        assert!((v - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ssd_count_changes_price_linearly() {
        let base = ServerConfig::paper_default()
            .with_gpu_count(4)
            .with_main_memory(768 * GIB);
        let p6 = commodity_server_price(&base.with_ssd_count(6));
        let p12 = commodity_server_price(&base.with_ssd_count(12));
        assert!((p12 - p6 - 6.0 * P5510_PRICE_USD).abs() < 1e-9);
    }
}
