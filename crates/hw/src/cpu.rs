//! CPU specifications and the out-of-core Adam throughput model.
//!
//! The paper's server uses two Xeon Gold 5320 CPUs (Table III). The only CPU
//! property the training pipeline depends on is how fast the vectorized CPU
//! Adam (ZeRO-Offload style) can update parameters: each update reads the
//! fp32 master parameter and the two fp32 optimizer moments, writes them
//! back, and emits a new fp16 copy — a memory-bandwidth-bound streaming loop.

/// A CPU (socket pair) as used in the evaluation server.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Total physical cores across sockets.
    pub cores: usize,
    /// Parameters updated per second by the vectorized CPU Adam.
    pub adam_params_per_sec: f64,
}

impl CpuSpec {
    /// Dual Intel Xeon Gold 5320 @ 2.20 GHz (Table III): 2 x 26 cores.
    ///
    /// The Adam rate is calibrated so that a 13B-parameter update takes
    /// ~24 s of CPU time: together with the optimizer-state SSD I/O this
    /// reproduces the ~23 s ZeRO-Infinity optimizer stage of Fig. 1a and
    /// the 30-60% optimizer proportions of Fig. 2c on this budget CPU
    /// pair (the update streams ~48 bytes per parameter through DDR4,
    /// which is memory-bandwidth- not FLOP-bound).
    pub fn dual_xeon_5320() -> Self {
        CpuSpec {
            name: "2x Xeon Gold 5320",
            cores: 52,
            adam_params_per_sec: 0.55e9,
        }
    }

    /// Seconds of CPU time to Adam-update `params` parameters.
    pub fn adam_seconds(&self, params: f64) -> f64 {
        params / self.adam_params_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_time_scales_linearly() {
        let cpu = CpuSpec::dual_xeon_5320();
        let t13 = cpu.adam_seconds(13e9);
        let t26 = cpu.adam_seconds(26e9);
        assert!((t26 / t13 - 2.0).abs() < 1e-12);
        // 13B update around 24 seconds, per the calibration note.
        assert!(t13 > 20.0 && t13 < 28.0, "t13 = {t13}");
    }
}
