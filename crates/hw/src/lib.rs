#![warn(missing_docs)]
//! Hardware catalog and bandwidth models for the Ratel reproduction.
//!
//! This crate describes the *evaluation server* of the paper (Table III) and
//! the component price list (Table VII) as plain data types. Every figure in
//! the paper is a function of the resource topology captured here:
//!
//! * a GPU with a measured transformer-block peak throughput (the green line
//!   of Fig. 5c),
//! * a full-duplex PCIe 4.0 link between GPU and main memory (21 GB/s per
//!   direction in the paper's measurements),
//! * an array of NVMe SSDs whose aggregate bandwidth scales with the number
//!   of drives up to a host-side cap (32 GB/s for 12 drives), treated as
//!   *simplex* — reads and writes share the array (Eq. 2 of the paper),
//! * CPUs executing the out-of-core Adam optimizer at a fixed parameter
//!   update rate.
//!
//! All bandwidths are bytes/second, capacities are bytes, compute rates are
//! FLOP/s, and times are seconds (`f64`).

pub mod cpu;
pub mod gpu;
pub mod pcie;
pub mod price;
pub mod server;
pub mod ssd;
pub mod units;

pub use cpu::CpuSpec;
pub use gpu::GpuSpec;
pub use pcie::PcieLink;
pub use server::ServerConfig;
pub use ssd::{SsdArray, SsdSpec};
