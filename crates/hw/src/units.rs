//! Size and rate unit helpers.
//!
//! The paper mixes decimal ("GB/s" on links) and binary ("24 GB device
//! memory") conventions; we follow the common systems practice of decimal
//! gigabytes for bandwidths and binary gibibytes for memory capacities, and
//! expose both so call sites state which one they mean.

/// Decimal kilobyte (1e3 bytes).
pub const KB: u64 = 1_000;
/// Decimal megabyte (1e6 bytes).
pub const MB: u64 = 1_000_000;
/// Decimal gigabyte (1e9 bytes).
pub const GB: u64 = 1_000_000_000;
/// Decimal terabyte (1e12 bytes).
pub const TB: u64 = 1_000_000_000_000;

/// Binary kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// Binary mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// Binary gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// Binary tebibyte (2^40 bytes).
pub const TIB: u64 = 1 << 40;

/// One teraFLOP (1e12 floating point operations).
pub const TFLOP: f64 = 1e12;

/// Billion (model sizes are quoted in billions of parameters).
pub const BILLION: f64 = 1e9;

/// Formats a byte count with a human-readable decimal suffix ("213.0 GB").
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= TB as f64 {
        format!("{:.2} TB", b / TB as f64)
    } else if b >= GB as f64 {
        format!("{:.1} GB", b / GB as f64)
    } else if b >= MB as f64 {
        format!("{:.1} MB", b / MB as f64)
    } else if b >= KB as f64 {
        format!("{:.1} KB", b / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a FLOP/s rate as TFLOPS.
pub fn fmt_tflops(flops_per_sec: f64) -> String {
    format!("{:.1} TFLOPS", flops_per_sec / TFLOP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_and_binary_units_differ() {
        assert_eq!(GB, 1_000_000_000);
        assert_eq!(GIB, 1_073_741_824);
    }

    #[test]
    fn formats_bytes_across_magnitudes() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KB), "2.0 KB");
        assert_eq!(fmt_bytes(213 * GB), "213.0 GB");
        assert_eq!(fmt_bytes(46 * TB + 80 * GB), "46.08 TB");
    }

    #[test]
    fn formats_tflops() {
        assert_eq!(fmt_tflops(160.0 * TFLOP), "160.0 TFLOPS");
    }
}
