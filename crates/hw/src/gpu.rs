//! GPU specifications.
//!
//! `measured_flops` corresponds to the paper's "Measured Peak TFLOPS": the
//! sustained mixed-precision throughput of a transformer block benchmarked
//! *inside* the GPU with no PCIe traffic (green line of Fig. 5c), not the
//! marketing tensor-core number. Small batches do not saturate the GPU, so
//! [`GpuSpec::effective_flops`] applies a saturation curve in the batch size.

use crate::units::{GIB, TFLOP};

/// A GPU model as used in the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. "RTX 4090".
    pub name: &'static str,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Sustained transformer-block throughput in FLOP/s at full saturation.
    pub measured_flops: f64,
    /// Whether the device supports GPUDirect Storage. Consumer GPUs do not,
    /// which is why G10 cannot run on them (§III-C issue 3).
    pub gpudirect: bool,
    /// Unit price in USD (Table VII where given).
    pub price_usd: f64,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 4090: 24 GB, the paper's primary device.
    pub fn rtx4090() -> Self {
        GpuSpec {
            name: "RTX 4090",
            memory_bytes: 24 * GIB,
            measured_flops: 160.0 * TFLOP,
            gpudirect: false,
            price_usd: 1_600.0,
        }
    }

    /// NVIDIA GeForce RTX 3090: 24 GB, roughly 0.44x the 4090's throughput.
    pub fn rtx3090() -> Self {
        GpuSpec {
            name: "RTX 3090",
            memory_bytes: 24 * GIB,
            measured_flops: 71.0 * TFLOP,
            gpudirect: false,
            price_usd: 1_000.0,
        }
    }

    /// NVIDIA GeForce RTX 4080: only 16 GB of device memory.
    pub fn rtx4080() -> Self {
        GpuSpec {
            name: "RTX 4080",
            memory_bytes: 16 * GIB,
            measured_flops: 97.0 * TFLOP,
            gpudirect: false,
            price_usd: 1_200.0,
        }
    }

    /// NVIDIA A100-80G (DGX building block), used by the Megatron-LM
    /// cost-effectiveness baseline (§V-I). Data-center GPUs support
    /// GPUDirect.
    pub fn a100_80g() -> Self {
        GpuSpec {
            name: "A100-80G",
            memory_bytes: 80 * GIB,
            measured_flops: 290.0 * TFLOP,
            gpudirect: true,
            price_usd: 14_177.0,
        }
    }

    /// Sustained FLOP/s at a given micro-batch size.
    ///
    /// Kernel launch overheads and partially filled SMs make small batches
    /// less efficient; the `b / (b + 2)` saturation curve reaches 80% at
    /// batch 8 and ~97% at batch 64, mirroring the batch sensitivity visible
    /// in Fig. 5a and Fig. 7.
    pub fn effective_flops(&self, batch_size: usize) -> f64 {
        let b = batch_size.max(1) as f64;
        self.measured_flops * (b / (b + 2.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_capacities() {
        assert_eq!(GpuSpec::rtx4090().memory_bytes, 24 * GIB);
        assert_eq!(GpuSpec::rtx4080().memory_bytes, 16 * GIB);
        assert_eq!(GpuSpec::a100_80g().memory_bytes, 80 * GIB);
        assert!(!GpuSpec::rtx4090().gpudirect);
        assert!(GpuSpec::a100_80g().gpudirect);
    }

    #[test]
    fn effective_flops_saturates_with_batch() {
        let gpu = GpuSpec::rtx4090();
        let small = gpu.effective_flops(1);
        let medium = gpu.effective_flops(8);
        let large = gpu.effective_flops(64);
        assert!(small < medium && medium < large);
        assert!(large <= gpu.measured_flops);
        assert!(large > 0.95 * gpu.measured_flops);
    }

    #[test]
    fn effective_flops_handles_zero_batch() {
        let gpu = GpuSpec::rtx4090();
        assert_eq!(gpu.effective_flops(0), gpu.effective_flops(1));
    }
}
