//! PCIe link model.
//!
//! The GPU is attached over PCIe 4.0 x16. The paper measures ~21 GB/s of
//! effective bandwidth per direction and stresses that the link is *full
//! duplex*: GPU-to-main and main-to-GPU transfer times are accounted
//! separately (Eq. 2), unlike the simplex SSD array.

use crate::units::GB;

/// A point-to-point full-duplex link with symmetric per-direction bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLink {
    /// Effective bandwidth of each direction, bytes/second.
    pub bandwidth_per_dir: f64,
}

impl PcieLink {
    /// PCIe 4.0 x16 as measured on the evaluation server (Fig. 1a: 21 GB/s).
    pub fn gen4_x16() -> Self {
        PcieLink {
            bandwidth_per_dir: 21.0 * GB as f64,
        }
    }

    /// PCIe 3.0 x16 (RTX 3090 servers are sometimes gen3-limited; kept for
    /// sensitivity studies).
    pub fn gen3_x16() -> Self {
        PcieLink {
            bandwidth_per_dir: 12.0 * GB as f64,
        }
    }

    /// Seconds to move `bytes` in one direction.
    pub fn transfer_seconds(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth_per_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen4_transfer_time() {
        let link = PcieLink::gen4_x16();
        // 2 bytes/param for a 13B fp16 copy = 26 GB, ~1.24 s per direction.
        let t = link.transfer_seconds(26e9);
        assert!((t - 26.0 / 21.0).abs() < 1e-9);
    }
}
