//! Runtime lock-order tracking (always on in debug builds).
//!
//! Every acquisition of a *named* [`crate::sync::Mutex`] pushes onto a
//! thread-local held-lock stack and records `held → acquired` edges in a
//! process-global acquisition graph. Two classes of bug fail fast at the
//! point of the bug rather than as a rare production deadlock:
//!
//! * **Order cycles** — if thread A ever acquires `x` then `y` and
//!   thread B ever acquires `y` then `x`, the second edge closes a cycle
//!   in the graph and the acquisition panics with the full cycle path,
//!   even if the two threads never actually collide in this run.
//! * **Blocking under a lock** — long-latency operations (SSD I/O,
//!   backoff sleeps, condvar waits with a foreign lock held) assert via
//!   [`assert_blocking_ok`] that no tracked lock is held; PR 7 fixed two
//!   such sleeps found by eye, this makes the class mechanically
//!   excluded.
//!
//! All checks compile to no-ops in release builds; unnamed locks are
//! never tracked.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Mutex as StdMutex, OnceLock};

/// A recorded lock-order violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Acquiring `acquired` while holding `held` closes a cycle in the
    /// acquisition graph; `cycle` is the path `acquired → … → held`.
    OrderCycle {
        /// Lock being acquired.
        acquired: String,
        /// Lock already held by this thread.
        held: String,
        /// Existing path from `acquired` back to `held`.
        cycle: Vec<String>,
    },
    /// A blocking operation ran while tracked locks were held.
    BlockingUnderLock {
        /// Description of the blocking operation.
        op: String,
        /// Tracked locks held by this thread, outermost first.
        held: Vec<String>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::OrderCycle {
                acquired,
                held,
                cycle,
            } => {
                write!(
                    f,
                    "lock-order cycle: acquiring [{acquired}] while holding [{held}], \
                     but the acquisition graph already orders {}",
                    cycle.join(" -> ")
                )
            }
            Violation::BlockingUnderLock { op, held } => {
                write!(
                    f,
                    "blocking op ({op}) while holding tracked lock(s): [{}]",
                    held.join("], [")
                )
            }
        }
    }
}

/// An acquisition graph over named locks with cycle detection.
///
/// [`global`] is the process-wide instance fed by
/// [`crate::sync::Mutex`]; standalone instances are for tests.
#[derive(Debug, Default)]
pub struct LockGraph {
    inner: StdMutex<GraphInner>,
}

#[derive(Debug, Default)]
struct GraphInner {
    /// Directed edges `before → after` between lock names.
    edges: HashMap<String, HashSet<String>>,
}

impl LockGraph {
    /// An empty acquisition graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a thread holding every lock in `held` (outermost
    /// first) acquires `acquired`, and checks the combined graph for a
    /// cycle. On success the new edges are kept; the first edge that
    /// would close a cycle is rejected and returned.
    pub fn check_acquire(&self, held: &[&str], acquired: &str) -> Result<(), Violation> {
        if held.is_empty() {
            return Ok(());
        }
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for h in held {
            if *h == acquired {
                // Recursive re-acquisition is a std-mutex deadlock, but
                // it deadlocks deterministically on the spot — the graph
                // tracks cross-lock ordering only.
                continue;
            }
            // Adding h -> acquired closes a cycle iff acquired already
            // reaches h.
            if let Some(path) = path_between(&g.edges, acquired, h) {
                return Err(Violation::OrderCycle {
                    acquired: acquired.to_string(),
                    held: h.to_string(),
                    cycle: path,
                });
            }
            g.edges
                .entry(h.to_string())
                .or_default()
                .insert(acquired.to_string());
        }
        Ok(())
    }

    /// Snapshot of the recorded edges, sorted.
    pub fn edges(&self) -> Vec<(String, String)> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, String)> = g
            .edges
            .iter()
            .flat_map(|(from, tos)| tos.iter().map(move |to| (from.clone(), to.clone())))
            .collect();
        out.sort();
        out
    }
}

/// BFS path `from → … → to` over `edges`, if one exists.
fn path_between(
    edges: &HashMap<String, HashSet<String>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut prev: HashMap<&str, &str> = HashMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(from);
    prev.insert(from, from);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to.to_string()];
            let mut cur = to;
            while prev[cur] != cur {
                cur = prev[cur];
                path.push(cur.to_string());
            }
            path.reverse();
            return Some(path);
        }
        if let Some(next) = edges.get(node) {
            for n in next {
                if !prev.contains_key(n.as_str()) {
                    prev.insert(n, node);
                    queue.push_back(n);
                }
            }
        }
    }
    None
}

/// The process-global acquisition graph fed by named
/// [`crate::sync::Mutex`] instances.
pub fn global() -> &'static LockGraph {
    static GLOBAL: OnceLock<LockGraph> = OnceLock::new();
    GLOBAL.get_or_init(LockGraph::new)
}

thread_local! {
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Tracked locks currently held by this thread, outermost first.
pub fn held() -> Vec<&'static str> {
    HELD.with(|h| h.borrow().clone())
}

/// RAII token for one tracked acquisition; dropping pops the held
/// stack.
#[derive(Debug)]
pub struct Held {
    name: &'static str,
}

impl Drop for Held {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut stack = h.borrow_mut();
            // Guards usually drop LIFO; drop-reordering (e.g. an early
            // `drop(outer)`) removes the matching entry wherever it is.
            if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                stack.remove(pos);
            }
        });
    }
}

/// Records a named-lock acquisition: checks the acquisition graph for a
/// cycle (panicking with the cycle path on violation) and pushes the
/// held stack. Returns `None` (no tracking) for unnamed locks and in
/// release builds.
pub fn on_lock(name: &'static str) -> Option<Held> {
    if name.is_empty() || !cfg!(debug_assertions) {
        return None;
    }
    HELD.with(|h| {
        let stack = h.borrow();
        if !stack.is_empty() {
            if let Err(v) = global().check_acquire(&stack, name) {
                drop(stack);
                panic!("ratel-check lockorder: {v}");
            }
        }
    });
    HELD.with(|h| h.borrow_mut().push(name));
    Some(Held { name })
}

/// Asserts (debug builds) that no tracked lock is held across a
/// blocking operation `op` — SSD I/O, sleeps, channel sends that can
/// park. Call this at the blocking point; it panics with the held-lock
/// stack on violation.
#[track_caller]
pub fn assert_blocking_ok(op: &str) {
    if !cfg!(debug_assertions) {
        return;
    }
    let held = held();
    if !held.is_empty() {
        let v = Violation::BlockingUnderLock {
            op: op.to_string(),
            held: held.iter().map(|s| s.to_string()).collect(),
        };
        panic!("ratel-check lockorder: {v}");
    }
}

/// Checks (debug builds) that a condvar wait on `own_lock` is not
/// performed while holding any *other* tracked lock: the foreign lock
/// stays locked for the whole wait, which is the classic shape of a
/// condvar deadlock. Panics on violation.
pub fn on_condvar_wait(own_lock: &'static str) {
    if !cfg!(debug_assertions) {
        return;
    }
    let foreign: Vec<&'static str> = held().into_iter().filter(|n| *n != own_lock).collect();
    if !foreign.is_empty() {
        let v = Violation::BlockingUnderLock {
            op: format!("condvar wait on [{own_lock}]"),
            held: foreign.iter().map(|s| s.to_string()).collect(),
        };
        panic!("ratel-check lockorder: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_is_accepted() {
        let g = LockGraph::new();
        assert!(g.check_acquire(&["a"], "b").is_ok());
        assert!(g.check_acquire(&["a", "b"], "c").is_ok());
        assert!(g.check_acquire(&["a"], "c").is_ok());
        // Same order again: idempotent.
        assert!(g.check_acquire(&["a"], "b").is_ok());
    }

    #[test]
    fn two_lock_inversion_is_a_cycle() {
        let g = LockGraph::new();
        assert!(g.check_acquire(&["a"], "b").is_ok());
        let v = g.check_acquire(&["b"], "a").unwrap_err();
        match v {
            Violation::OrderCycle { acquired, held, .. } => {
                assert_eq!(acquired, "a");
                assert_eq!(held, "b");
            }
            other => panic!("expected OrderCycle, got {other:?}"),
        }
    }

    #[test]
    fn transitive_inversion_is_a_cycle() {
        let g = LockGraph::new();
        assert!(g.check_acquire(&["a"], "b").is_ok());
        assert!(g.check_acquire(&["b"], "c").is_ok());
        let v = g.check_acquire(&["c"], "a").unwrap_err();
        match v {
            Violation::OrderCycle { cycle, .. } => {
                assert_eq!(cycle.first().map(String::as_str), Some("a"));
                assert_eq!(cycle.last().map(String::as_str), Some("c"));
            }
            other => panic!("expected OrderCycle, got {other:?}"),
        }
    }

    #[test]
    fn recursive_same_name_is_ignored_by_the_graph() {
        let g = LockGraph::new();
        assert!(g.check_acquire(&["a"], "a").is_ok());
        assert!(g.edges().is_empty());
    }
}
