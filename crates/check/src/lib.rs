#![warn(missing_docs)]
//! Concurrency analysis for the Ratel synchronization layer.
//!
//! PRs 5–7 hand-rolled exactly the primitives that fail silently under
//! rare interleavings: a condvar pending-key protocol in `TieredStore`,
//! dependency-counted ready queues in the executor, and a lock-free
//! seqlock ring in the flight recorder. This crate gives that layer the
//! same "provably safe before CI merges" treatment `ratel-verify` gives
//! plans, with three pillars:
//!
//! * **Shimmed sync primitives** ([`sync`]) — `Mutex`, `Condvar`,
//!   atomics, and `thread::spawn` wrappers that pass straight through to
//!   `std` in normal builds, feed the debug-build lock-order tracker
//!   when named, and — inside an [`explore::Explorer`] run — hand every
//!   blocking or atomic operation to a deterministic scheduler.
//! * **A bounded interleaving explorer** ([`explore`]) — loom/DPOR-style
//!   stateless search: model threads run one at a time, every sync
//!   operation is a schedule point, and the explorer enumerates
//!   schedules depth-first under a preemption bound (with an optional
//!   seeded-random mode for larger models). Deadlocks, lost wake-ups,
//!   and assertion failures are reported with a full interleaving
//!   witness naming each lock/atomic touched.
//! * **A runtime lock-order tracker** ([`lockorder`]) — always on in
//!   debug builds: every named-lock acquisition records an edge in a
//!   process-global acquisition graph and fails on cycles (potential
//!   deadlock); blocking operations (SSD I/O, sleeps, condvar waits
//!   with a foreign lock held) fail when executed under a tracked lock.
//!
//! The [`models`] module holds small, faithful models of the three core
//! protocols (seqlock ring, pending-key/condvar, dependency-counted
//! executor) plus seeded-bug mutants; `tests/check_mutations.rs` proves
//! the explorer catches every mutant and passes every pristine model.

pub mod explore;
pub mod lockorder;
pub mod models;
pub mod sync;

pub use explore::{CheckFailure, Explorer, FailureKind, Report};

/// Fails the current model run with `message`. Inside an explorer run
/// the failure is reported with the interleaving witness that led to
/// it; outside, this is a plain panic.
pub fn fail(message: impl Into<String>) -> ! {
    explore::fail(message.into())
}

/// Asserts a model invariant, failing the run with the interleaving
/// witness when it does not hold.
pub fn check(cond: bool, message: impl Into<String>) {
    if !cond {
        explore::fail(message.into());
    }
}
