//! Model of the `TieredStore` pending-key condvar protocol.
//!
//! `storage::store` keeps a pending set of keys with I/O in flight: the
//! I/O path marks the key pending, runs the transfer with the lock
//! *released*, then re-locks, installs the result, clears the pending
//! mark, and `notify_all`s waiters. Readers that find the key pending
//! wait on the condvar in a loop. The model is one key (a boolean) with
//! one I/O thread and two waiting readers; the invariant is that every
//! reader eventually observes the installed value — the lost-notify
//! mutant turns a rare unlucky interleaving into a reader that sleeps
//! forever, which the explorer reports as a deadlock.

use std::sync::Arc;

use crate::sync::{thread, Condvar, Mutex};

/// Which pending-key protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped protocol: clearing the pending mark notifies all
    /// waiters.
    Pristine,
    /// Seeded bug: the I/O completion clears the pending mark without
    /// notifying — any reader that started waiting before the clear
    /// sleeps forever.
    LostNotify,
}

struct Key {
    state: Mutex<KeyState>,
    cv: Condvar,
}

#[derive(Debug)]
struct KeyState {
    pending: bool,
    value: u64,
}

/// Runs the model once under the current scheduler: the key starts
/// pending (I/O already dispatched), one I/O thread completes it, two
/// readers block until it clears.
pub fn run(variant: Variant) {
    let key = Arc::new(Key {
        state: Mutex::named(
            "store.inner",
            KeyState {
                pending: true,
                value: 0,
            },
        ),
        cv: Condvar::named("store.pending_cv"),
    });

    let io = {
        let key = Arc::clone(&key);
        thread::spawn_named("io", move || {
            // The transfer itself happens with the lock released; the
            // yield is the schedule point standing in for SSD latency.
            thread::yield_now();
            let mut st = key.state.lock();
            st.value = 42;
            st.pending = false;
            if variant == Variant::Pristine {
                key.cv.notify_all();
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|i| {
            let key = Arc::clone(&key);
            thread::spawn_named(if i == 0 { "reader-0" } else { "reader-1" }, move || {
                let mut st = key.state.lock();
                while st.pending {
                    key.cv.wait(&mut st);
                }
                crate::check(
                    st.value == 42,
                    format!(
                        "reader observed pending clear without the installed value \
                         (value = {}) [store.inner]",
                        st.value
                    ),
                );
            })
        })
        .collect();

    io.join();
    for r in readers {
        r.join();
    }
}
