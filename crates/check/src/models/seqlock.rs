//! Model of the flight-recorder seqlock slot.
//!
//! `obs::flight` publishes events into a lock-free ring: the writer
//! invalidates a slot's stamp (`0` = being written), stores the payload
//! words, then publishes a non-zero stamp; the reader loads the stamp,
//! copies the payload, re-loads the stamp, and accepts the copy only if
//! the stamp was non-zero and unchanged. The model is one slot with a
//! two-word payload whose invariant is that both words always equal the
//! published version — a torn read is any accepted sample that mixes
//! versions.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::{thread, AtomicU64};

/// Which seqlock protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped protocol: readers discard samples whose stamp is the
    /// in-progress marker or changed across the payload copy.
    Pristine,
    /// Seeded bug: the reader ignores the in-progress stamp (the "odd
    /// sequence number" of a classic seqlock) and accepts any sample
    /// whose two stamp loads merely agree — a writer parked mid-payload
    /// lets a torn sample through.
    TornRead,
}

struct Slot {
    stamp: AtomicU64,
    d0: AtomicU64,
    d1: AtomicU64,
}

/// Runs the model once under the current scheduler: one writer
/// publishing versions 1..=2, one reader taking two samples.
pub fn run(variant: Variant) {
    let slot = Arc::new(Slot {
        stamp: AtomicU64::named("flight.slot.stamp", 0),
        d0: AtomicU64::named("flight.slot.d0", 0),
        d1: AtomicU64::named("flight.slot.d1", 0),
    });

    let writer = {
        let slot = Arc::clone(&slot);
        thread::spawn_named("writer", move || {
            for version in 1..=2u64 {
                // Invalidate, write payload, publish — the flight.rs
                // record() sequence.
                slot.stamp.store(0, Ordering::Release);
                slot.d0.store(version, Ordering::Relaxed);
                slot.d1.store(version, Ordering::Relaxed);
                slot.stamp.store(version, Ordering::Release);
            }
        })
    };

    let reader = {
        let slot = Arc::clone(&slot);
        thread::spawn_named("reader", move || {
            for _ in 0..2 {
                let s1 = slot.stamp.load(Ordering::Acquire);
                if variant == Variant::Pristine && s1 == 0 {
                    // In-progress marker: discard the sample.
                    continue;
                }
                let r0 = slot.d0.load(Ordering::Relaxed);
                let r1 = slot.d1.load(Ordering::Relaxed);
                let s2 = slot.stamp.load(Ordering::Acquire);
                if s1 != s2 {
                    // Stamp moved underneath the copy: discard.
                    continue;
                }
                crate::check(
                    r0 == r1,
                    format!(
                        "torn seqlock read accepted: payload ({r0}, {r1}) mixes versions \
                         at stamp {s1} [flight.slot.stamp]"
                    ),
                );
                if s1 != 0 {
                    crate::check(
                        r0 == s1,
                        format!(
                            "seqlock sample payload {r0} does not match published stamp {s1} \
                             [flight.slot.stamp]"
                        ),
                    );
                }
            }
        })
    };

    writer.join();
    reader.join();
}
