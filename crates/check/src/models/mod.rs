//! Small, faithful models of the three core Ratel sync protocols, plus
//! seeded-bug mutants.
//!
//! Each module models one protocol with [`crate::sync`] primitives so it
//! runs under the [`crate::explore::Explorer`]:
//!
//! * [`seqlock`] — the flight-recorder seqlock ring
//!   (`crates/obs/src/flight.rs`): invalidate-stamp / payload / publish-
//!   stamp writer vs. stamp / payload / stamp-recheck reader.
//! * [`pending`] — the `TieredStore` pending-key condvar protocol
//!   (`crates/storage/src/store.rs`): I/O marked pending outside the
//!   lock, waiters blocked on a condvar until the key clears.
//! * [`exec`] — the dependency-counted ready queues of the executor
//!   (`crates/core/src/engine/executor.rs`): upstream completions
//!   decrement a dependency counter; the final decrement enqueues.
//! * [`locks`] — a two-lock ordering model for the lock-order tracker
//!   and explorer deadlock detection.
//!
//! Every module has a `Pristine` variant (must pass full bounded
//! exploration) and at least one seeded-bug mutant (must be caught with
//! an interleaving witness); `tests/check_mutations.rs` at the workspace
//! root enforces both directions.

pub mod exec;
pub mod locks;
pub mod pending;
pub mod seqlock;
