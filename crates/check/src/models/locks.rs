//! Two-lock ordering model.
//!
//! The smallest deadlock: two threads, two locks, opposite acquisition
//! orders. The pristine variant fixes a global order (both threads take
//! `a` then `b`); the inverted mutant is caught two independent ways —
//! the explorer finds the interleaving where each thread holds one lock
//! and wants the other (deadlock witness), and the
//! [`crate::lockorder::LockGraph`] rejects the second acquisition edge
//! as a cycle without needing the unlucky interleaving at all.

use std::sync::Arc;

use crate::sync::{thread, Mutex};

/// Which acquisition order the two worker threads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Both threads acquire `a` then `b` — a consistent global order.
    Pristine,
    /// Seeded bug: the second thread acquires `b` then `a`.
    Inverted,
}

/// Runs the model once under the current scheduler.
pub fn run(variant: Variant) {
    let a = Arc::new(Mutex::named("model.lock_a", 0u32));
    let b = Arc::new(Mutex::named("model.lock_b", 0u32));

    let w1 = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn_named("w1", move || {
            let mut ga = a.lock();
            let mut gb = b.lock();
            *ga += 1;
            *gb += 1;
        })
    };

    let w2 = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn_named("w2", move || match variant {
            Variant::Pristine => {
                let mut ga = a.lock();
                let mut gb = b.lock();
                *ga += 1;
                *gb += 1;
            }
            Variant::Inverted => {
                let mut gb = b.lock();
                let mut ga = a.lock();
                *ga += 1;
                *gb += 1;
            }
        })
    };

    w1.join();
    w2.join();
}
