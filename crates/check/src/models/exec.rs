//! Model of the executor's dependency-counted ready queues.
//!
//! `core::engine::executor` gives every action a pending-dependency
//! counter; each completed upstream does `fetch_sub(1)` and the thread
//! that observes the count hit zero pushes the action onto its pool's
//! ready queue and notifies. The model is two upstream completions
//! feeding one downstream task and one worker draining the queue; the
//! invariants are that the downstream is enqueued exactly once and the
//! worker terminates.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::{thread, AtomicUsize, Condvar, Mutex};

/// Which dependency-counting protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped protocol: an atomic `fetch_sub` so exactly one
    /// upstream observes the transition to zero.
    Pristine,
    /// Seeded bug: the decrement is a non-atomic load/store pair — two
    /// upstreams can both read the same count, the transition to zero is
    /// lost, and the worker waits forever for a task that is never
    /// enqueued.
    LostDecrement,
}

struct Pool {
    deps: AtomicUsize,
    queue: Mutex<VecDeque<usize>>,
    ready: Condvar,
    enqueues: AtomicUsize,
}

/// Runs the model once under the current scheduler: two upstream
/// completions, one downstream task (id 7), one worker.
pub fn run(variant: Variant) {
    let pool = Arc::new(Pool {
        deps: AtomicUsize::named("exec.deps", 2),
        queue: Mutex::named("exec.queue", VecDeque::new()),
        ready: Condvar::named("exec.ready"),
        enqueues: AtomicUsize::named("exec.enqueues", 0),
    });

    let upstreams: Vec<_> = (0..2)
        .map(|i| {
            let pool = Arc::clone(&pool);
            thread::spawn_named(if i == 0 { "up-0" } else { "up-1" }, move || {
                let hit_zero = match variant {
                    Variant::Pristine => pool.deps.fetch_sub(1, Ordering::AcqRel) == 1,
                    Variant::LostDecrement => {
                        let seen = pool.deps.load(Ordering::Acquire);
                        pool.deps.store(seen - 1, Ordering::Release);
                        seen == 1
                    }
                };
                if hit_zero {
                    let prior = pool.enqueues.fetch_add(1, Ordering::AcqRel);
                    crate::check(
                        prior == 0,
                        "downstream enqueued twice: dependency count [exec.deps] hit zero \
                         for two upstreams",
                    );
                    pool.queue.lock().push_back(7);
                    pool.ready.notify_one();
                }
            })
        })
        .collect();

    let worker = {
        let pool = Arc::clone(&pool);
        thread::spawn_named("worker", move || {
            let mut q = pool.queue.lock();
            while q.is_empty() {
                pool.ready.wait(&mut q);
            }
            let task = q.pop_front();
            crate::check(
                task == Some(7),
                format!("worker popped unexpected task {task:?} [exec.queue]"),
            );
        })
    };

    for u in upstreams {
        u.join();
    }
    worker.join();
}
