//! The bounded interleaving explorer.
//!
//! Model threads are real OS threads, but only one ever runs at a time:
//! a token-passing scheduler grants execution to exactly one thread and
//! every operation on a [`crate::sync`] primitive is a *schedule point*
//! where the token may move. Because the model itself is deterministic,
//! the interleaving is fully determined by the sequence of scheduling
//! *choices*, and the explorer enumerates those sequences depth-first
//! (stateless DFS: re-run the model with the next choice vector) under a
//! preemption bound — switching away from a runnable thread consumes
//! budget, switching at a blocking point is free. This is the classic
//! CHESS/loom search shape: small bounds catch almost all real
//! concurrency bugs while keeping the schedule tree tractable.
//!
//! What the explorer checks:
//! * **Deadlock** — no thread can make progress but not all finished
//!   (covers lock cycles *and* lost condvar wake-ups).
//! * **Assertions** — [`crate::fail`]/[`crate::check`] or any panic in
//!   model code fails the run.
//! * **Livelock** — a run exceeding the operation budget fails.
//!
//! Every failure carries a *witness*: the full operation trace of the
//! failing interleaving (thread, primitive name, operation), plus each
//! blocked thread's final state.
//!
//! What it does not model (documented limits, see DESIGN.md): weak
//! memory (all atomics explore sequentially-consistent interleavings),
//! spurious condvar wake-ups, and `notify_one` picks waiters in FIFO
//! order rather than branching on the choice of waiter.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to unwind controlled threads after a failure has
/// been recorded; caught (and swallowed) by the thread trampoline.
pub(crate) struct Abort;

/// Panic payload for [`crate::fail`] inside an explorer run.
pub(crate) struct ModelFailure(pub String);

/// Fails the current model run (panics with a typed payload the
/// explorer recognizes; a plain panic outside a run).
pub(crate) fn fail(message: String) -> ! {
    if current().is_some() {
        panic::panic_any(ModelFailure(message));
    }
    panic!("{message}");
}

/// What kind of property violation an exploration found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread could make progress, but not every thread had finished
    /// (lock cycle, lost notify, join on a stuck thread, …).
    Deadlock,
    /// A model assertion failed or model code panicked.
    Assertion,
    /// The run exceeded the operation budget (livelock guard).
    OpsLimit,
}

impl FailureKind {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::Assertion => "assertion",
            FailureKind::OpsLimit => "ops_limit",
        }
    }
}

/// A property violation found by [`Explorer::explore`], with the
/// interleaving that triggers it.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description (assertion message, blocked-thread
    /// summary for deadlocks).
    pub message: String,
    /// The failing interleaving, one executed operation per line:
    /// `t<id>(<thread name>): <op> [<primitive name>]`.
    pub witness: Vec<String>,
    /// 0-based index of the failing schedule in exploration order.
    pub schedule: usize,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} in schedule #{}: {}",
            self.kind.name(),
            self.schedule,
            self.message
        )?;
        writeln!(f, "interleaving witness ({} ops):", self.witness.len())?;
        for line in &self.witness {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Summary of a completed (property-clean) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether the bounded schedule tree was fully enumerated (`false`
    /// means the schedule budget ran out first).
    pub complete: bool,
    /// Longest operation trace over all schedules.
    pub max_ops: usize,
}

/// Why a controlled thread cannot currently run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Can run (or is running).
    Runnable,
    /// Blocked acquiring the lock with this id.
    WantLock(usize),
    /// Blocked in a condvar wait: (condvar id, mutex id to reacquire).
    Waiting(usize, usize),
    /// Blocked joining the thread with this tid.
    Joining(usize),
    /// Done.
    Finished,
}

struct ThreadState {
    name: String,
    status: Status,
    /// FIFO arrival stamp for condvar wake order.
    wait_stamp: u64,
}

/// One scheduling decision: `chosen` among `options` eligible threads.
#[derive(Debug, Clone, Copy)]
struct Choice {
    options: usize,
    chosen: usize,
}

struct SchedState {
    threads: Vec<ThreadState>,
    /// The thread currently holding the execution token.
    active: usize,
    /// Lock id -> owning tid.
    lock_owner: HashMap<usize, usize>,
    /// Friendly names for lock/condvar/atomic ids.
    names: HashMap<usize, String>,
    /// Choice vector being replayed (prefix), then extended with 0s.
    replay: Vec<usize>,
    cursor: usize,
    /// Choice log of this run (for DFS backtracking).
    log: Vec<Choice>,
    preemptions: usize,
    trace: Vec<String>,
    failure: Option<(FailureKind, String)>,
    wait_counter: u64,
    ops: usize,
}

/// Shared state of one schedule execution.
pub(crate) struct RunCtx {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    /// Real OS threads still alive (driver waits for zero).
    real_alive: AtomicUsize,
    max_preemptions: usize,
    max_ops: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<RunCtx>, usize)>> = const { RefCell::new(None) };
}

/// The run context of the calling thread, if it is a controlled model
/// thread inside an explorer run.
pub(crate) fn current() -> Option<(Arc<RunCtx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl RunCtx {
    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a primitive's display name (first writer wins).
    pub(crate) fn register_name(&self, id: usize, name: &str) {
        if name.is_empty() {
            return;
        }
        let mut st = self.lock_state();
        st.names.entry(id).or_insert_with(|| name.to_string());
    }

    fn describe(st: &SchedState, id: usize) -> String {
        match st.names.get(&id) {
            Some(n) => n.clone(),
            None => format!("obj@{id:x}"),
        }
    }

    fn record(&self, st: &mut SchedState, tid: usize, op: String) {
        let name = st.threads[tid].name.clone();
        st.trace.push(format!("t{tid}({name}): {op}"));
        st.ops += 1;
    }

    fn set_failure(&self, st: &mut SchedState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some((kind, message));
        }
        self.cv.notify_all();
    }

    /// Aborts the calling thread if the run has failed. Must be called
    /// with the state lock held; drops it before unwinding.
    fn abort_if_failed<'a>(
        &self,
        st: StdMutexGuard<'a, SchedState>,
    ) -> StdMutexGuard<'a, SchedState> {
        if st.failure.is_some() {
            drop(st);
            panic::panic_any(Abort);
        }
        st
    }

    /// Whether `tid` could be granted the token right now.
    fn eligible(st: &SchedState, tid: usize) -> bool {
        match st.threads[tid].status {
            Status::Runnable => true,
            Status::WantLock(l) => !st.lock_owner.contains_key(&l),
            Status::Waiting(..) => false,
            Status::Joining(t) => st.threads[t].status == Status::Finished,
            Status::Finished => false,
        }
    }

    /// Grants the token to `tid` (resolving its blocking intent) and
    /// wakes it.
    fn grant(&self, st: &mut SchedState, tid: usize) {
        match st.threads[tid].status {
            Status::WantLock(l) => {
                st.lock_owner.insert(l, tid);
                let lock = Self::describe(st, l);
                self.record(st, tid, format!("acquire [{lock}]"));
            }
            Status::Joining(_) | Status::Runnable => {}
            Status::Waiting(..) | Status::Finished => {
                unreachable!("granted a non-eligible thread")
            }
        }
        st.threads[tid].status = Status::Runnable;
        st.active = tid;
        self.cv.notify_all();
    }

    /// The heart of the scheduler: picks the next thread to run. Called
    /// at every schedule point after the caller updated its own status.
    /// Returns with the state lock released and the calling thread
    /// either granted (continue running) or — if it blocked and another
    /// thread was granted — parked until granted.
    fn schedule(&self, mut st: StdMutexGuard<'_, SchedState>, tid: usize) {
        st = self.abort_if_failed(st);
        if st.ops > self.max_ops {
            self.set_failure(
                &mut st,
                FailureKind::OpsLimit,
                format!("run exceeded {} operations (livelock?)", self.max_ops),
            );
            drop(st);
            panic::panic_any(Abort);
        }

        let n = st.threads.len();
        let mut eligible: Vec<usize> = Vec::with_capacity(n);
        // Current thread first: choice 0 == "keep running" when possible,
        // so the DFS base schedule is the natural uninterrupted one.
        if Self::eligible(&st, tid) {
            eligible.push(tid);
        }
        for t in 0..n {
            if t != tid && Self::eligible(&st, t) {
                eligible.push(t);
            }
        }

        if eligible.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                // Clean end of the run.
                self.cv.notify_all();
                return;
            }
            self.report_deadlock(&mut st);
            drop(st);
            panic::panic_any(Abort);
        }

        let next = if eligible.len() == 1 {
            eligible[0]
        } else {
            let current_runnable = eligible[0] == tid;
            if current_runnable && st.preemptions >= self.max_preemptions {
                // Preemption budget spent: forced to keep running (no
                // choice point recorded, keeping the DFS tree bounded).
                tid
            } else {
                let cursor = st.cursor;
                let chosen = st.replay.get(cursor).copied().unwrap_or(0);
                st.cursor += 1;
                st.log.push(Choice {
                    options: eligible.len(),
                    chosen,
                });
                let pick = eligible[chosen.min(eligible.len() - 1)];
                if current_runnable && pick != tid {
                    st.preemptions += 1;
                }
                pick
            }
        };

        self.grant(&mut st, next);
        if next == tid {
            return;
        }
        self.park(st, tid);
    }

    /// Records a deadlock failure with a summary of every blocked
    /// thread (appended to the trace so the witness shows final states).
    fn report_deadlock(&self, st: &mut SchedState) {
        let mut blocked = Vec::new();
        for (t, ts) in st.threads.iter().enumerate() {
            let what = match ts.status {
                Status::WantLock(l) => {
                    format!("blocked acquiring [{}]", Self::describe(st, l))
                }
                Status::Waiting(cv, m) => format!(
                    "waiting on condvar [{}] (reacquires [{}])",
                    Self::describe(st, cv),
                    Self::describe(st, m)
                ),
                Status::Joining(j) => {
                    format!("joining t{j}({})", st.threads[j].name)
                }
                Status::Runnable | Status::Finished => continue,
            };
            blocked.push(format!("t{t}({}) {what}", ts.name));
        }
        let message = format!("deadlock: {}", blocked.join("; "));
        for line in &blocked {
            let line = line.clone();
            st.trace.push(format!("-- {line}"));
        }
        self.set_failure(st, FailureKind::Deadlock, message);
    }

    /// Parks the calling thread until it is granted the token (status
    /// back to `Runnable` and `active == tid`). State lock is consumed.
    fn park(&self, mut st: StdMutexGuard<'_, SchedState>, tid: usize) {
        loop {
            st = self.abort_if_failed(st);
            if st.active == tid && st.threads[tid].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    // ---- operations invoked by the sync shims ----

    /// A plain schedule point (atomic ops, yields): records `op` and
    /// lets the scheduler move the token.
    pub(crate) fn point(&self, tid: usize, op: String) {
        let mut st = self.lock_state();
        st = self.abort_if_failed(st);
        self.record(&mut st, tid, op);
        self.schedule(st, tid);
    }

    /// Blocking lock acquisition.
    pub(crate) fn acquire(&self, tid: usize, lock: usize) {
        let mut st = self.lock_state();
        st = self.abort_if_failed(st);
        let name = Self::describe(&st, lock);
        self.record(&mut st, tid, format!("want-lock [{name}]"));
        st.threads[tid].status = Status::WantLock(lock);
        self.schedule(st, tid);
    }

    /// Lock release. `reschedule` is false during panic unwinding,
    /// where blocking again could turn one failure into a hang.
    pub(crate) fn release(&self, tid: usize, lock: usize, reschedule: bool) {
        let mut st = self.lock_state();
        if st.lock_owner.get(&lock) == Some(&tid) {
            st.lock_owner.remove(&lock);
        }
        let name = Self::describe(&st, lock);
        self.record(&mut st, tid, format!("release [{name}]"));
        if reschedule && st.failure.is_none() {
            self.schedule(st, tid);
        } else {
            self.cv.notify_all();
        }
    }

    /// Condvar wait: atomically releases `lock` and blocks until
    /// notified, then re-acquires `lock` before returning.
    pub(crate) fn wait(&self, tid: usize, condvar: usize, lock: usize) {
        let mut st = self.lock_state();
        st = self.abort_if_failed(st);
        if st.lock_owner.get(&lock) == Some(&tid) {
            st.lock_owner.remove(&lock);
        }
        let cv_name = Self::describe(&st, condvar);
        let lock_name = Self::describe(&st, lock);
        self.record(
            &mut st,
            tid,
            format!("wait [{cv_name}] releasing [{lock_name}]"),
        );
        st.wait_counter += 1;
        st.threads[tid].wait_stamp = st.wait_counter;
        st.threads[tid].status = Status::Waiting(condvar, lock);
        self.schedule(st, tid);
        // Granted again: the scheduler resolved our WantLock (set by a
        // notify) and handed us the lock.
    }

    /// Wakes waiters of `condvar` (all, or the longest-waiting one).
    /// Woken threads move to `WantLock` on their mutex — they still
    /// contend for it like any other acquirer.
    pub(crate) fn notify(&self, tid: usize, condvar: usize, all: bool) {
        let mut st = self.lock_state();
        st = self.abort_if_failed(st);
        let mut waiters: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t].status, Status::Waiting(cv, _) if cv == condvar))
            .collect();
        waiters.sort_by_key(|&t| st.threads[t].wait_stamp);
        if !all {
            waiters.truncate(1);
        }
        let cv_name = Self::describe(&st, condvar);
        let kind = if all { "notify-all" } else { "notify-one" };
        self.record(
            &mut st,
            tid,
            format!("{kind} [{cv_name}] wakes {} waiter(s)", waiters.len()),
        );
        for w in waiters {
            if let Status::Waiting(_, m) = st.threads[w].status {
                st.threads[w].status = Status::WantLock(m);
            }
        }
        self.schedule(st, tid);
    }

    /// Accounts a newly spawned real OS thread (the driver waits for
    /// the count to drop back to zero).
    pub(crate) fn add_real_thread(&self) {
        self.real_alive.fetch_add(1, Ordering::AcqRel);
    }

    /// Registers a new controlled thread, returning its tid.
    pub(crate) fn register_thread(&self, name: String) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadState {
            name,
            status: Status::Runnable,
            wait_stamp: 0,
        });
        st.threads.len() - 1
    }

    /// First act of a spawned controlled thread: park until granted.
    pub(crate) fn wait_for_first_grant(&self, tid: usize) {
        let st = self.lock_state();
        self.park(st, tid);
    }

    /// Blocking join on thread `target`.
    pub(crate) fn join(&self, tid: usize, target: usize) {
        let mut st = self.lock_state();
        st = self.abort_if_failed(st);
        let tname = st.threads[target].name.clone();
        self.record(&mut st, tid, format!("join t{target}({tname})"));
        st.threads[tid].status = Status::Joining(target);
        self.schedule(st, tid);
    }

    /// Marks the calling thread finished and hands the token onward.
    /// `outcome` is None for a clean exit, or the failure to record.
    pub(crate) fn finish_thread(&self, tid: usize, outcome: Option<String>) {
        let mut st = self.lock_state();
        if let Some(message) = outcome {
            self.record(&mut st, tid, format!("FAILED: {message}"));
            self.set_failure(&mut st, FailureKind::Assertion, message);
            st.threads[tid].status = Status::Finished;
            drop(st);
            return;
        }
        self.record(&mut st, tid, "finish".to_string());
        st.threads[tid].status = Status::Finished;
        if st.failure.is_some() {
            drop(st);
            return;
        }
        // Hand off without blocking (we are done): grant any eligible
        // thread; if none and someone is stuck, that is a deadlock.
        let n = st.threads.len();
        let eligible: Vec<usize> = (0..n).filter(|&t| Self::eligible(&st, t)).collect();
        if let Some(&next) = eligible.first() {
            // No choice point: exploration of post-exit orderings adds
            // nothing (the finished thread takes no further actions).
            self.grant(&mut st, next);
        } else if st.threads.iter().any(|t| t.status != Status::Finished) {
            self.report_deadlock(&mut st);
        } else {
            self.cv.notify_all();
        }
    }
}

/// Runs `f` as controlled thread `tid` of `ctx`: installs the
/// thread-local run handle, waits for the first grant, and converts
/// panics into run failures.
pub(crate) fn trampoline<F: FnOnce()>(ctx: Arc<RunCtx>, tid: usize, f: F) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctx), tid)));
    ctx.wait_for_first_grant(tid);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let outcome = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_some() {
                // Failure already recorded by whoever set it. The
                // decrement happens under the state lock so the driver's
                // check-then-wait cannot miss the wake-up.
                CURRENT.with(|c| *c.borrow_mut() = None);
                let mut st = ctx.lock_state();
                st.threads[tid].status = Status::Finished;
                ctx.real_alive.fetch_sub(1, Ordering::Release);
                drop(st);
                ctx.cv.notify_all();
                return;
            } else if let Some(mf) = payload.downcast_ref::<ModelFailure>() {
                Some(mf.0.clone())
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some(format!("model panicked: {s}"))
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(format!("model panicked: {s}"))
            } else {
                Some("model panicked".to_string())
            }
        }
    };
    ctx.finish_thread(tid, outcome);
    CURRENT.with(|c| *c.borrow_mut() = None);
    // Decrement under the state lock: the driver checks `real_alive`
    // with the lock held before waiting, so this ordering guarantees it
    // either sees zero or is already waiting when the notify fires.
    let st = ctx.lock_state();
    ctx.real_alive.fetch_sub(1, Ordering::Release);
    drop(st);
    ctx.cv.notify_all();
}

/// How the explorer walks the schedule tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive depth-first enumeration of the preemption-bounded
    /// schedule tree (up to the schedule budget).
    Dfs,
    /// Seeded pseudo-random schedule sampling: `runs` schedules with
    /// choices drawn from an xorshift stream seeded per schedule.
    Random {
        /// Base seed; schedule `i` uses `seed + i`.
        seed: u64,
        /// Number of schedules to sample.
        runs: usize,
    },
}

/// Bounded exhaustive (or seeded-random) interleaving exploration of a
/// deterministic model built on [`crate::sync`] primitives.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Preemptions allowed per schedule (switches away from a runnable
    /// thread; blocking switches are free). 2 catches almost all real
    /// bugs; 3 is thorough.
    pub max_preemptions: usize,
    /// Hard cap on schedules executed.
    pub max_schedules: usize,
    /// Per-schedule operation budget (livelock guard).
    pub max_ops: usize,
    /// Search strategy.
    pub strategy: Strategy,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_preemptions: 2,
            max_schedules: 100_000,
            max_ops: 20_000,
            strategy: Strategy::Dfs,
        }
    }
}

impl Explorer {
    /// An exhaustive explorer with the given preemption bound.
    pub fn with_preemptions(max_preemptions: usize) -> Self {
        Explorer {
            max_preemptions,
            ..Explorer::default()
        }
    }

    /// Runs one schedule of `model` replaying `replay`, returning the
    /// scheduler state after the run.
    fn run_one<F>(&self, model: &Arc<F>, replay: Vec<usize>) -> SchedState
    where
        F: Fn() + Send + Sync + 'static,
    {
        let ctx = Arc::new(RunCtx {
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                active: 0,
                lock_owner: HashMap::new(),
                names: HashMap::new(),
                replay,
                cursor: 0,
                log: Vec::new(),
                preemptions: 0,
                trace: Vec::new(),
                failure: None,
                wait_counter: 0,
                ops: 0,
            }),
            cv: StdCondvar::new(),
            real_alive: AtomicUsize::new(0),
            max_preemptions: self.max_preemptions,
            max_ops: self.max_ops,
        });
        let tid = ctx.register_thread("main".to_string());
        debug_assert_eq!(tid, 0);
        ctx.real_alive.fetch_add(1, Ordering::AcqRel);
        {
            // Thread 0 starts granted.
            let mut st = ctx.lock_state();
            st.active = 0;
            ctx.cv.notify_all();
        }
        let ctx2 = Arc::clone(&ctx);
        let model = Arc::clone(model);
        let handle = std::thread::Builder::new()
            .name("ratel-check-model".to_string())
            .spawn(move || trampoline(ctx2, 0, move || model()))
            .unwrap_or_else(|e| panic!("spawn model thread: {e}"));

        // Wait for every real thread of the run to exit.
        {
            let mut st = ctx.lock_state();
            while ctx.real_alive.load(Ordering::Acquire) != 0 {
                st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            drop(st);
        }
        let _ = handle.join();
        match Arc::try_unwrap(ctx) {
            Ok(ctx) => ctx.state.into_inner().unwrap_or_else(|e| e.into_inner()),
            Err(ctx) => {
                // A detached model thread still holds a reference (it
                // exited; the Arc drop just raced). Clone the state out.
                let st = ctx.lock_state();
                SchedState {
                    threads: Vec::new(),
                    active: 0,
                    lock_owner: HashMap::new(),
                    names: HashMap::new(),
                    replay: Vec::new(),
                    cursor: 0,
                    log: st.log.clone(),
                    preemptions: st.preemptions,
                    trace: st.trace.clone(),
                    failure: st.failure.clone(),
                    wait_counter: 0,
                    ops: st.ops,
                }
            }
        }
    }

    /// Explores `model` under this explorer's bounds. Returns the first
    /// property violation with its interleaving witness, or a report of
    /// the clean exploration.
    ///
    /// The model must be deterministic: all scheduling nondeterminism
    /// must flow through [`crate::sync`] primitives.
    pub fn explore<F>(&self, model: F) -> Result<Report, CheckFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        match self.strategy {
            Strategy::Dfs => self.explore_dfs(&model),
            Strategy::Random { seed, runs } => self.explore_random(&model, seed, runs),
        }
    }

    fn explore_dfs<F>(&self, model: &Arc<F>) -> Result<Report, CheckFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut max_ops = 0usize;
        loop {
            let st = self.run_one(model, replay.clone());
            schedules += 1;
            max_ops = max_ops.max(st.ops);
            if let Some((kind, message)) = st.failure {
                return Err(CheckFailure {
                    kind,
                    message,
                    witness: st.trace,
                    schedule: schedules - 1,
                });
            }
            // Next schedule: increment the rightmost choice that still
            // has unexplored options; drop everything after it.
            let log = st.log;
            let mut next: Option<Vec<usize>> = None;
            for i in (0..log.len()).rev() {
                if log[i].chosen + 1 < log[i].options {
                    let mut r: Vec<usize> = log[..i].iter().map(|c| c.chosen).collect();
                    r.push(log[i].chosen + 1);
                    next = Some(r);
                    break;
                }
            }
            match next {
                Some(r) if schedules < self.max_schedules => replay = r,
                Some(_) => {
                    return Ok(Report {
                        schedules,
                        complete: false,
                        max_ops,
                    })
                }
                None => {
                    return Ok(Report {
                        schedules,
                        complete: true,
                        max_ops,
                    })
                }
            }
        }
    }

    fn explore_random<F>(
        &self,
        model: &Arc<F>,
        seed: u64,
        runs: usize,
    ) -> Result<Report, CheckFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut max_ops = 0usize;
        let runs = runs.min(self.max_schedules);
        for i in 0..runs {
            // A long pseudo-random choice vector; choices are taken
            // modulo the live option count at each point.
            let mut x = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                | 1;
            let replay: Vec<usize> = (0..self.max_ops)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % 4) as usize
                })
                .collect();
            let st = self.run_one(model, replay);
            max_ops = max_ops.max(st.ops);
            if let Some((kind, message)) = st.failure {
                return Err(CheckFailure {
                    kind,
                    message,
                    witness: st.trace,
                    schedule: i,
                });
            }
        }
        Ok(Report {
            schedules: runs,
            complete: false,
            max_ops,
        })
    }
}
