//! Shimmed synchronization primitives.
//!
//! Drop-in `Mutex`/`Condvar`/atomic/`thread::spawn` wrappers with three
//! personalities, selected automatically:
//!
//! * **Normal builds** — passthrough to `std::sync` (lock methods never
//!   return poison errors: a poisoned lock is recovered, matching the
//!   vendored `parking_lot` semantics the storage layer already uses).
//! * **Debug builds, named primitives** — every acquisition feeds the
//!   process-global lock-order tracker ([`crate::lockorder`]): cycles in
//!   the acquisition graph and blocking ops under a tracked lock fail
//!   fast at the point of the bug.
//! * **Inside an [`crate::explore::Explorer`] run** — every operation
//!   becomes a schedule point of the deterministic interleaving
//!   scheduler; locks, waits, and atomics are model-level so the
//!   explorer can enumerate interleavings.
//!
//! Production code names its primitives ([`Mutex::named`]) so both the
//! lock-order tracker and exploration witnesses can report `storage.inner`
//! rather than an address.

use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::{self as std_sync, Arc};

use crate::explore::{self, RunCtx};
use crate::lockorder;

fn obj_id<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

/// A mutex whose `lock` never fails; named instances feed the
/// lock-order tracker (debug) and the interleaving explorer.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    name: &'static str,
    inner: std_sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// An unnamed (untracked) mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self::named("", value)
    }

    /// A named mutex: acquisitions are recorded in the debug lock-order
    /// graph and exploration witnesses under `name`.
    pub const fn named(name: &'static str, value: T) -> Self {
        Mutex {
            name,
            inner: std_sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// This mutex's tracker name (empty if unnamed).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = obj_id(self);
        let sched = explore::current();
        if let Some((ctx, tid)) = &sched {
            ctx.register_name(id, self.name);
            ctx.acquire(*tid, id);
        }
        let held = lockorder::on_lock(self.name);
        let real = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            mutex: self,
            real: ManuallyDrop::new(real),
            held,
            sched,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    real: ManuallyDrop<std_sync::MutexGuard<'a, T>>,
    held: Option<lockorder::Held>,
    sched: Option<(Arc<RunCtx>, usize)>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.real
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.real
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: the real lock is released before the model-level
        // release hands the token to a thread that may acquire it.
        unsafe { ManuallyDrop::drop(&mut self.real) };
        self.held.take();
        if let Some((ctx, tid)) = self.sched.take() {
            ctx.release(tid, obj_id(self.mutex), !std::thread::panicking());
        }
    }
}

/// A condition variable usable with [`MutexGuard`] (no poison plumbing,
/// explorer-aware). Spurious wake-ups are possible in passthrough mode;
/// callers must re-check their predicate in a loop.
#[derive(Debug, Default)]
pub struct Condvar {
    name: &'static str,
    inner: std_sync::Condvar,
}

impl Condvar {
    /// An unnamed condition variable.
    pub const fn new() -> Self {
        Self::named("")
    }

    /// A named condition variable (name appears in witnesses).
    pub const fn named(name: &'static str) -> Self {
        Condvar {
            name,
            inner: std_sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// re-acquiring the mutex before returning.
    ///
    /// In debug builds this fails fast if the calling thread holds any
    /// *other* tracked lock — waiting with a foreign lock held is the
    /// classic shape of a condvar deadlock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        lockorder::on_condvar_wait(guard.mutex.name);
        // The wait releases the mutex: pop it from the held stack for
        // the duration (re-pushed on re-acquisition below).
        let was_tracked = guard.held.take().is_some();
        match guard.sched.clone() {
            Some((ctx, tid)) => {
                let cv_id = obj_id(self);
                let lock_id = obj_id(guard.mutex);
                ctx.register_name(cv_id, self.name);
                // Really unlock before parking: the next lock holder
                // takes the real mutex for real.
                unsafe { ManuallyDrop::drop(&mut guard.real) };
                ctx.wait(tid, cv_id, lock_id);
                // Granted again with model ownership of the mutex.
                let real = guard.mutex.inner.lock().unwrap_or_else(|e| e.into_inner());
                guard.real = ManuallyDrop::new(real);
            }
            None => unsafe {
                let real = ManuallyDrop::take(&mut guard.real);
                let real = self.inner.wait(real).unwrap_or_else(|e| e.into_inner());
                guard.real = ManuallyDrop::new(real);
            },
        }
        if was_tracked {
            guard.held = lockorder::on_lock(guard.mutex.name);
        }
    }

    /// Wakes one waiting thread (the longest-waiting one under the
    /// explorer).
    pub fn notify_one(&self) {
        if let Some((ctx, tid)) = explore::current() {
            ctx.register_name(obj_id(self), self.name);
            ctx.notify(tid, obj_id(self), false);
        }
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        if let Some((ctx, tid)) = explore::current() {
            ctx.register_name(obj_id(self), self.name);
            ctx.notify(tid, obj_id(self), true);
        }
        self.inner.notify_all();
    }
}

macro_rules! checked_atomic {
    ($name:ident, $std:ty, $raw:ty) => {
        /// Explorer-aware atomic: every operation is a schedule point
        /// inside an exploration (sequentially-consistent interleaving
        /// semantics), a plain std atomic otherwise.
        #[derive(Debug, Default)]
        pub struct $name {
            tag: &'static str,
            inner: $std,
        }

        impl $name {
            /// An unnamed atomic holding `value`.
            pub const fn new(value: $raw) -> Self {
                Self::named("", value)
            }

            /// A named atomic (name appears in exploration witnesses).
            pub const fn named(tag: &'static str, value: $raw) -> Self {
                Self {
                    tag,
                    inner: <$std>::new(value),
                }
            }

            fn point(&self, op: &str) {
                if let Some((ctx, tid)) = explore::current() {
                    let id = obj_id(self);
                    ctx.register_name(id, self.tag);
                    let tag = if self.tag.is_empty() {
                        "atomic"
                    } else {
                        self.tag
                    };
                    ctx.point(tid, format!("{op} [{tag}]"));
                }
            }

            /// Atomic load (schedule point under the explorer).
            pub fn load(&self, order: std_sync::atomic::Ordering) -> $raw {
                self.point("load");
                self.inner.load(order)
            }

            /// Atomic store (schedule point under the explorer).
            pub fn store(&self, value: $raw, order: std_sync::atomic::Ordering) {
                self.point("store");
                self.inner.store(value, order)
            }
        }
    };
}

checked_atomic!(AtomicU64, std_sync::atomic::AtomicU64, u64);
checked_atomic!(AtomicUsize, std_sync::atomic::AtomicUsize, usize);
checked_atomic!(AtomicBool, std_sync::atomic::AtomicBool, bool);

impl AtomicU64 {
    /// Atomic add returning the previous value.
    pub fn fetch_add(&self, value: u64, order: std_sync::atomic::Ordering) -> u64 {
        self.point("fetch_add");
        self.inner.fetch_add(value, order)
    }
}

impl AtomicUsize {
    /// Atomic add returning the previous value.
    pub fn fetch_add(&self, value: usize, order: std_sync::atomic::Ordering) -> usize {
        self.point("fetch_add");
        self.inner.fetch_add(value, order)
    }

    /// Atomic subtract returning the previous value.
    pub fn fetch_sub(&self, value: usize, order: std_sync::atomic::Ordering) -> usize {
        self.point("fetch_sub");
        self.inner.fetch_sub(value, order)
    }
}

/// Explorer-aware threads for models.
pub mod thread {
    use super::*;

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Sched {
            ctx: Arc<RunCtx>,
            child: usize,
            real: std::thread::JoinHandle<()>,
            result: Arc<std_sync::Mutex<Option<T>>>,
        },
    }

    /// Handle to a spawned (possibly explorer-controlled) thread.
    pub struct JoinHandle<T>(Imp<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread and returns its value. Panics from the
        /// thread propagate (passthrough) or fail the exploration run.
        pub fn join(self) -> T {
            match self.0 {
                Imp::Std(h) => match h.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                },
                Imp::Sched {
                    ctx,
                    child,
                    real,
                    result,
                } => {
                    let (_, tid) = explore::current()
                        .unwrap_or_else(|| panic!("scheduled JoinHandle joined outside its run"));
                    ctx.join(tid, child);
                    let _ = real.join();
                    let value = result.lock().unwrap_or_else(|e| e.into_inner()).take();
                    match value {
                        Some(v) => v,
                        // The child aborted without producing a value;
                        // the failure is already recorded.
                        None => explore::fail("joined thread produced no value".to_string()),
                    }
                }
            }
        }
    }

    /// Spawns a thread; controlled by the scheduler inside an explorer
    /// run, a plain std thread otherwise.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        spawn_named("worker", f)
    }

    /// [`spawn`] with a thread name for witnesses.
    pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match explore::current() {
            None => JoinHandle(Imp::Std(
                std::thread::Builder::new()
                    .name(name.to_string())
                    .spawn(f)
                    .unwrap_or_else(|e| panic!("spawn {name}: {e}")),
            )),
            Some((ctx, tid)) => {
                let child = ctx.register_thread(name.to_string());
                ctx.add_real_thread();
                let result = Arc::new(std_sync::Mutex::new(None));
                let result2 = Arc::clone(&result);
                let cctx = Arc::clone(&ctx);
                let real = std::thread::Builder::new()
                    .name(format!("ratel-check-{name}"))
                    .spawn(move || {
                        explore::trampoline(cctx, child, move || {
                            let v = f();
                            *result2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                        })
                    })
                    .unwrap_or_else(|e| panic!("spawn model thread {name}: {e}"));
                // Schedule point: the child may be scheduled immediately.
                ctx.point(tid, format!("spawn t{child}({name})"));
                JoinHandle(Imp::Sched {
                    ctx,
                    child,
                    real,
                    result,
                })
            }
        }
    }

    /// A voluntary schedule point (no-op outside an exploration).
    pub fn yield_now() {
        if let Some((ctx, tid)) = explore::current() {
            ctx.point(tid, "yield".to_string());
        }
    }
}
