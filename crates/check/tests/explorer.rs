//! Explorer mechanics: the scheduler must find seeded races, report
//! deadlocks with witnesses, and pass race-free programs.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ratel_check::sync::{thread, AtomicUsize, Mutex};
use ratel_check::{Explorer, FailureKind};

/// Two increments through a non-atomic load/store pair: the explorer
/// must find the interleaving that loses one.
#[test]
fn finds_lost_update_race() {
    let failure = Explorer::default()
        .explore(|| {
            let counter = Arc::new(AtomicUsize::named("counter", 0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let seen = counter.load(Ordering::Acquire);
                        counter.store(seen + 1, Ordering::Release);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            ratel_check::check(
                counter.load(Ordering::Acquire) == 2,
                "increment lost on [counter]",
            );
        })
        .expect_err("lost-update race must be found");
    assert_eq!(failure.kind, FailureKind::Assertion);
    assert!(failure.message.contains("[counter]"), "{failure}");
    assert!(!failure.witness.is_empty());
}

/// The same program with a real atomic increment is race-free and the
/// bounded tree is fully enumerated.
#[test]
fn atomic_increment_passes() {
    let report = Explorer::default()
        .explore(|| {
            let counter = Arc::new(AtomicUsize::named("counter", 0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        counter.fetch_add(1, Ordering::AcqRel);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            ratel_check::check(
                counter.load(Ordering::Acquire) == 2,
                "increment lost on [counter]",
            );
        })
        .expect("atomic increment is race-free");
    assert!(report.complete, "bounded tree should be fully enumerated");
    assert!(report.schedules > 1, "the race requires multiple schedules");
}

/// Mutex-protected increments are race-free even with the load/store
/// split, because the lock serializes the critical sections.
#[test]
fn mutex_protected_increment_passes() {
    let report = Explorer::default()
        .explore(|| {
            let counter = Arc::new(Mutex::named("model.counter", 0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let mut c = counter.lock();
                        *c += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            let total = *counter.lock();
            ratel_check::check(total == 2, "increment lost on [model.counter]");
        })
        .expect("locked increment is race-free");
    assert!(report.complete);
}

/// A thread that never gets woken: joined before anyone notifies.
#[test]
fn reports_deadlock_with_witness() {
    use ratel_check::sync::Condvar;

    let failure = Explorer::default()
        .explore(|| {
            let pair = Arc::new((
                Mutex::named("model.flag", false),
                Condvar::named("model.cv"),
            ));
            let waiter = {
                let pair = Arc::clone(&pair);
                thread::spawn_named("waiter", move || {
                    let mut flag = pair.0.lock();
                    while !*flag {
                        pair.1.wait(&mut flag);
                    }
                })
            };
            // Nobody ever sets the flag or notifies.
            waiter.join();
        })
        .expect_err("un-notified wait must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.message.contains("model.cv"), "{failure}");
    assert!(
        failure.witness.iter().any(|l| l.contains("model.cv")),
        "{failure}"
    );
}

/// Seeded-random strategy finds the same lost-update race.
#[test]
fn random_strategy_finds_race() {
    let explorer = Explorer {
        strategy: ratel_check::explore::Strategy::Random {
            seed: 0x5eed_1dea,
            runs: 200,
        },
        ..Explorer::default()
    };
    let failure = explorer
        .explore(|| {
            let counter = Arc::new(AtomicUsize::named("counter", 0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let seen = counter.load(Ordering::Acquire);
                        counter.store(seen + 1, Ordering::Release);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            ratel_check::check(
                counter.load(Ordering::Acquire) == 2,
                "increment lost on [counter]",
            );
        })
        .expect_err("random sampling should hit the race within 200 runs");
    assert_eq!(failure.kind, FailureKind::Assertion);
}
