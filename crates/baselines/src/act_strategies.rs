//! Activation-management strategies for the §V-E ablation (Fig. 9a,
//! Table V).
//!
//! All strategies run inside Ratel's runtime (model states on SSD, active
//! gradient offloading); only the activation decision differs:
//!
//! * `RatelZero` — DeepSpeed's static policy: swap only the inter-block
//!   checkpoints, recompute everything else.
//! * `Capuchin` — cost-aware swap-vs-recompute, but only into host memory
//!   (Capuchin predates SSD offloading): the convex walk with SSD spill
//!   disabled.
//! * `G10` — swap *everything*, spilling past `MEM_avail` to the SSDs,
//!   no recomputation (G10's inactive-time policy offloads all).
//! * `Checkmate` — memory-optimal rematerialization into host memory:
//!   fill the entire host budget with the highest-benefit activations
//!   (its MILP minimizes recomputation under a memory budget and ignores
//!   interconnect traffic). Its solver needs to keep a sizable fraction
//!   of the activation set resident, so it fails outright on very small
//!   memory (Table V's "Failed" cell at 128 GB).
//! * `RatelOptimized` — the full holistic planner.

use ratel::offload::GradOffloadMode;
use ratel::planner::{ActivationPlanner, SwapPlan};
use ratel::profile::HardwareProfile;
use ratel::report::IterationReport;
use ratel::schedule::RatelSchedule;
use ratel_hw::ServerConfig;
use ratel_model::{ModelConfig, ModelProfile};

/// An activation-management strategy grafted onto Ratel's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActStrategy {
    /// Static ZeRO-style checkpoint-only swapping ("Ratel+ZeRO").
    RatelZero,
    /// Capuchin's host-only cost-aware policy ("Ratel+Cap").
    Capuchin,
    /// G10's swap-everything policy ("Ratel+G10").
    G10,
    /// Checkmate's memory-optimal rematerialization ("Ratel+CM").
    Checkmate,
    /// The holistic traffic-aware planner ("Ratel+Optimized").
    RatelOptimized,
}

/// Fraction of `A_all` Checkmate's formulation needs resident in host
/// memory to produce a plan (below this it reports infeasible).
const CHECKMATE_MIN_RESIDENT_FRACTION: f64 = 0.25;

/// Host-only strategies keep roughly three times the checkpoint bytes
/// resident (the checkpoints themselves plus double-buffered pinned
/// staging), which is what pushes their adopted batch down as main
/// memory shrinks (Table V).
const HOST_ONLY_CHECKPOINT_FACTOR: f64 = 2.8;

impl ActStrategy {
    /// All strategies in the paper's legend order.
    pub const ALL: [ActStrategy; 5] = [
        ActStrategy::RatelZero,
        ActStrategy::Capuchin,
        ActStrategy::G10,
        ActStrategy::Checkmate,
        ActStrategy::RatelOptimized,
    ];

    /// Display name matching Fig. 9a / Table V.
    pub fn name(self) -> &'static str {
        match self {
            ActStrategy::RatelZero => "Ratel+ZeRO",
            ActStrategy::Capuchin => "Ratel+Cap",
            ActStrategy::G10 => "Ratel+G10",
            ActStrategy::Checkmate => "Ratel+CM",
            ActStrategy::RatelOptimized => "Ratel+Optimized",
        }
    }

    /// Whether the strategy can run `model` at `batch` on `server`
    /// (beyond Ratel's own feasibility, host-only strategies must fit
    /// their resident activations in main memory).
    pub fn feasible(self, server: &ServerConfig, model: &ModelConfig, batch: usize) -> bool {
        let profile = ModelProfile::new(model, batch);
        if ratel::RatelMemoryModel::default()
            .check(server, &profile)
            .is_err()
        {
            return false;
        }
        let hw = HardwareProfile::measure(server, &profile, batch);
        match self {
            ActStrategy::RatelOptimized | ActStrategy::G10 => true,
            // Host-only strategies need the checkpoint working set (with
            // its pinned staging) resident in main memory.
            ActStrategy::RatelZero | ActStrategy::Capuchin => {
                HOST_ONLY_CHECKPOINT_FACTOR * profile.inter_act_bytes() <= hw.mem_avail
            }
            ActStrategy::Checkmate => {
                HOST_ONLY_CHECKPOINT_FACTOR * profile.inter_act_bytes() <= hw.mem_avail
                    && CHECKMATE_MIN_RESIDENT_FRACTION * profile.total_act_bytes() <= hw.mem_avail
            }
        }
    }

    /// Largest feasible batch among `candidates`.
    pub fn adopt_batch(
        self,
        server: &ServerConfig,
        model: &ModelConfig,
        candidates: &[usize],
    ) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&b| self.feasible(server, model, b))
            .max()
    }

    /// Builds this strategy's swap plan.
    pub fn plan(self, hw: &HardwareProfile, profile: &ModelProfile) -> SwapPlan {
        match self {
            ActStrategy::RatelOptimized => ActivationPlanner::new(hw, profile).plan(),
            ActStrategy::RatelZero => {
                // Checkpoints only: target 0 extra bytes beyond the floor.
                ActivationPlanner::new(hw, profile).plan_with_swap_bytes(0.0)
            }
            ActStrategy::Capuchin => {
                let mut planner = ActivationPlanner::new(hw, profile);
                planner.allow_ssd_spill = false;
                planner.plan()
            }
            ActStrategy::G10 => {
                let planner = ActivationPlanner::new(hw, profile);
                planner.plan_with_swap_bytes(f64::INFINITY)
            }
            ActStrategy::Checkmate => {
                // Fill the host budget completely, nothing on SSD.
                let mut planner = ActivationPlanner::new(hw, profile);
                planner.allow_ssd_spill = false;
                planner.plan_with_swap_bytes(hw.mem_avail)
            }
        }
    }

    /// Simulates one iteration at `batch`; `None` if infeasible.
    pub fn simulate(
        self,
        server: &ServerConfig,
        model: &ModelConfig,
        batch: usize,
    ) -> Option<IterationReport> {
        if !self.feasible(server, model, batch) {
            return None;
        }
        let profile = ModelProfile::new(model, batch);
        let hw = HardwareProfile::measure(server, &profile, batch);
        let mut plan = self.plan(&hw, &profile);
        if matches!(self, ActStrategy::Capuchin | ActStrategy::Checkmate) {
            // Host-only plans must not spill; clamp defensively.
            plan.spill_bytes = 0.0;
        }
        Some(
            RatelSchedule {
                profile: &hw,
                model: &profile,
                plan: &plan,
                mode: GradOffloadMode::OptimizedActive,
                gpus: server.gpu_count,
            }
            .simulate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_hw::units::GIB;
    use ratel_model::zoo;

    fn server(gib: u64) -> ServerConfig {
        ServerConfig::paper_default().with_main_memory(gib * GIB)
    }

    const TABLE_V_BATCHES: [usize; 3] = [16, 24, 32];

    #[test]
    fn checkmate_fails_at_128g_like_table_v() {
        let m = zoo::llm("70B");
        assert_eq!(
            ActStrategy::Checkmate.adopt_batch(&server(128), &m, &TABLE_V_BATCHES),
            None
        );
        assert!(ActStrategy::Checkmate
            .adopt_batch(&server(256), &m, &TABLE_V_BATCHES)
            .is_some());
    }

    #[test]
    fn ssd_backed_strategies_keep_batch_32_at_any_memory() {
        let m = zoo::llm("70B");
        for gib in [128u64, 256, 512] {
            for s in [ActStrategy::RatelOptimized, ActStrategy::G10] {
                assert_eq!(
                    s.adopt_batch(&server(gib), &m, &TABLE_V_BATCHES),
                    Some(32),
                    "{} at {gib} GiB",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn host_only_strategies_lose_batch_with_less_memory() {
        let m = zoo::llm("70B");
        let b128 = ActStrategy::Capuchin
            .adopt_batch(&server(128), &m, &TABLE_V_BATCHES)
            .unwrap_or(0);
        let b512 = ActStrategy::Capuchin
            .adopt_batch(&server(512), &m, &TABLE_V_BATCHES)
            .unwrap_or(0);
        assert!(b128 <= b512, "{b128} vs {b512}");
        assert_eq!(b512, 32);
    }

    #[test]
    fn ratel_optimized_wins_fig9a_at_every_memory_size() {
        let m = zoo::llm("70B");
        for gib in [128u64, 256, 512] {
            let s = server(gib);
            let ratel = {
                let b = ActStrategy::RatelOptimized
                    .adopt_batch(&s, &m, &TABLE_V_BATCHES)
                    .unwrap();
                ActStrategy::RatelOptimized
                    .simulate(&s, &m, b)
                    .unwrap()
                    .throughput_items_per_sec
            };
            for other in [
                ActStrategy::RatelZero,
                ActStrategy::Capuchin,
                ActStrategy::G10,
                ActStrategy::Checkmate,
            ] {
                let tput = other
                    .adopt_batch(&s, &m, &TABLE_V_BATCHES)
                    .and_then(|b| other.simulate(&s, &m, b))
                    .map(|r| r.throughput_items_per_sec)
                    .unwrap_or(0.0);
                assert!(
                    ratel >= tput * 0.999,
                    "{gib} GiB: Ratel {ratel:.0} vs {} {tput:.0}",
                    other.name()
                );
            }
        }
    }

    #[test]
    fn ratel_throughput_is_steady_across_memory_sizes() {
        // Fig. 9a: Ratel's bars barely move from 512 GB to 128 GB because
        // activations spill to the SSDs instead of shrinking the batch.
        let m = zoo::llm("70B");
        let tput = |gib: u64| {
            ActStrategy::RatelOptimized
                .simulate(&server(gib), &m, 32)
                .unwrap()
                .throughput_items_per_sec
        };
        let lo = tput(128);
        let hi = tput(512);
        assert!(
            lo > 0.75 * hi,
            "throughput collapsed with memory: {lo:.0} vs {hi:.0}"
        );
    }

    #[test]
    fn g10_plan_swaps_everything() {
        let m = zoo::llm("13B");
        let profile = ModelProfile::new(&m, 32);
        let hw = HardwareProfile::measure(&ServerConfig::paper_default(), &profile, 32);
        let plan = ActStrategy::G10.plan(&hw, &profile);
        assert!(
            plan.flop_r < 1e9,
            "G10 must not recompute: {:.2e}",
            plan.flop_r
        );
        let total = profile.total_act_bytes();
        assert!((plan.a_g2m - total).abs() / total < 0.01);
    }

    #[test]
    fn zero_plan_swaps_only_checkpoints() {
        let m = zoo::llm("13B");
        let profile = ModelProfile::new(&m, 32);
        let hw = HardwareProfile::measure(&ServerConfig::paper_default(), &profile, 32);
        let plan = ActStrategy::RatelZero.plan(&hw, &profile);
        assert_eq!(plan.swapped.len(), 0);
        assert!((plan.a_g2m - profile.inter_act_bytes()).abs() < 1.0);
    }
}
