//! End-to-end baseline systems.
//!
//! Each system is described by where it places the three tensor families
//! (model states, activations, gradients), where its optimizer runs, and
//! how much memory its runtime needs — the axes §III uses to diagnose
//! why each baseline fails. Memory-model constants are calibrated to the
//! paper's reported maxima (Fig. 2a / Fig. 6): ZeRO-Infinity tops out at
//! 135B with 768 GB of main memory (~5.5 bytes/param of host residency),
//! Colossal-AI at ~70B (~10.5 bytes/param), ZeRO-Offload at 30B (16
//! bytes/param in host), FlashNeuron at ~1.5B (16 bytes/param *in GPU*),
//! and G10 needs GPUDirect, which consumer GPUs lack.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::report::IterationReport;
use ratel::schedule::{
    IterationSpec, LayerTask, LinkRates, OptimizerKind, ParamSource, RatelSchedule,
};
use ratel::RatelMemoryModel;
use ratel_hw::ServerConfig;
use ratel_model::{ModelConfig, ModelKind, ModelProfile};

/// A complete training system under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Ratel with optimized active gradient offloading and the holistic
    /// activation planner.
    Ratel,
    /// DeepSpeed ZeRO-Infinity: model states on SSD, inter-block
    /// activation checkpoints in host memory, full intra-block
    /// recomputation, gradients spilled to SSD, separate-stage CPU Adam.
    ZeroInfinity,
    /// DeepSpeed ZeRO-Offload: model states resident in host memory,
    /// otherwise like ZeRO-Infinity without SSDs.
    ZeroOffload,
    /// Colossal-AI with the Gemini chunk manager: states on SSD,
    /// checkpoints kept in GPU memory, chunky serialized optimizer.
    ColossalAi,
    /// FlashNeuron: model states resident in GPU memory, activations
    /// offloaded to SSD, in-GPU optimizer.
    FlashNeuron,
    /// G10: unified host/SSD tensor space, all activations offloaded, no
    /// recomputation, in-GPU optimizer over SSD-resident states. Requires
    /// GPUDirect.
    G10,
}

/// Host bytes DeepSpeed-family runtimes pin regardless of model size.
const DS_HOST_BASE: f64 = 8e9;
/// Host bytes per parameter ZeRO-Infinity keeps resident (pinned fp16
/// param/grad buckets, partitions, swap buffers).
const ZERO_INF_HOST_BYTES_PER_PARAM: f64 = 5.5;
/// Host bytes per parameter for Colossal-AI's Gemini chunks.
const COLOSSAL_HOST_BYTES_PER_PARAM: f64 = 10.5;
/// Host bytes per parameter for ZeRO-Offload (all 16P states in memory).
const ZERO_OFFLOAD_HOST_BYTES_PER_PARAM: f64 = 16.0;
/// GPU bytes per largest-layer parameter for layer-streaming baselines
/// (double-buffered fp16 weights + fp16 gradients).
const STREAMING_GPU_BYTES_PER_LAYER_PARAM: f64 = 6.0;
/// Unpinned staging throughput of the DeepSpeed/Colossal swap path,
/// bytes/s — the per-layer stall that stretches ZeRO-Infinity's 13B
/// forward stage to ~14 s in Fig. 1a.
const DS_STAGING_BYTES_PER_SEC: f64 = 1.5e9;
/// Fixed per-layer hook overhead of the DeepSpeed family, seconds.
const DS_LAYER_OVERHEAD_SEC: f64 = 0.05;
/// Fixed per-layer overhead of Colossal-AI's chunk manager, seconds.
const COLOSSAL_LAYER_OVERHEAD_SEC: f64 = 0.2;
/// Extra host bytes per parameter ZeRO-Infinity pins for each additional
/// GPU process (per-rank partitions and pinned buckets). This is the
/// paper's footnote 6: 135B fine-tunes on a single 4090, but only 70B on
/// the multi-GPU server "because of the additional GPU and main memory
/// overhead introduced by multi-GPU synchronization and multiprocessing".
const ZERO_INF_MULTI_GPU_BYTES_PER_PARAM: f64 = 1.5;
/// In-GPU Adam kernel cost, FLOPs per parameter.
const GPU_ADAM_FLOPS_PER_PARAM: f64 = 8.0;

impl System {
    /// All systems in figure-legend order.
    pub const ALL: [System; 6] = [
        System::FlashNeuron,
        System::ColossalAi,
        System::ZeroInfinity,
        System::ZeroOffload,
        System::G10,
        System::Ratel,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            System::Ratel => "Ratel",
            System::ZeroInfinity => "ZeRO-Infinity",
            System::ZeroOffload => "ZeRO-Offload",
            System::ColossalAi => "Colossal-AI",
            System::FlashNeuron => "FlashNeuron",
            System::G10 => "G10",
        }
    }

    /// Whether `model` at `batch` fits this system's memory model on
    /// `server`.
    pub fn feasible(self, server: &ServerConfig, model: &ModelConfig, batch: usize) -> bool {
        let profile = ModelProfile::new(model, batch);
        let p = profile.total_params();
        let gpu_cap = server.gpu.memory_bytes as f64;
        let host_cap = server.usable_main_memory() as f64;
        let ssd_cap = server.ssds.capacity_bytes() as f64;
        let tc = (batch * model.seq_len * model.hidden) as f64;
        let ws = 17.0 * tc; // same kernels, same working set as Ratel
        let streaming_gpu =
            STREAMING_GPU_BYTES_PER_LAYER_PARAM * profile.max_layer_params() + ws + 2.3e9;
        let inter = profile.inter_act_bytes();

        match self {
            System::Ratel => RatelMemoryModel::default().check(server, &profile).is_ok(),
            System::ZeroInfinity => {
                let per_param = ZERO_INF_HOST_BYTES_PER_PARAM
                    + ZERO_INF_MULTI_GPU_BYTES_PER_PARAM * (server.gpu_count as f64 - 1.0);
                streaming_gpu <= gpu_cap
                    && DS_HOST_BASE + per_param * p + inter * server.gpu_count as f64 <= host_cap
                    && 16.0 * p <= ssd_cap
                    && server.ssds.count > 0
            }
            System::ZeroOffload => {
                streaming_gpu <= gpu_cap
                    && DS_HOST_BASE + ZERO_OFFLOAD_HOST_BYTES_PER_PARAM * p + inter <= host_cap
            }
            System::ColossalAi => {
                // Gemini keeps the checkpoints (double-buffered chunks) in
                // GPU memory, which is what caps its batch size.
                streaming_gpu + 2.0 * inter <= gpu_cap
                    && DS_HOST_BASE + COLOSSAL_HOST_BYTES_PER_PARAM * p <= host_cap
                    && 16.0 * p <= ssd_cap
                    && server.ssds.count > 0
            }
            System::FlashNeuron => {
                16.0 * p + ws + 3e9 <= gpu_cap
                    && profile.total_act_bytes() <= ssd_cap
                    && server.ssds.count > 0
            }
            System::G10 => {
                server.gpu.gpudirect
                    && streaming_gpu <= gpu_cap
                    && 16.0 * p + profile.total_act_bytes() <= ssd_cap
                    && server.ssds.count > 0
            }
        }
    }

    /// Largest model of `ladder` trainable at `batch`, in billions of
    /// parameters (0 if none).
    pub fn max_trainable_billions(
        self,
        server: &ServerConfig,
        ladder: &[ModelConfig],
        batch: usize,
    ) -> f64 {
        ladder
            .iter()
            .filter(|m| self.feasible(server, m, batch))
            .map(|m| m.size_billions())
            .fold(0.0, f64::max)
    }

    /// Largest feasible batch among `candidates` (None if none fit).
    pub fn max_batch(
        self,
        server: &ServerConfig,
        model: &ModelConfig,
        candidates: &[usize],
    ) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&b| self.feasible(server, model, b))
            .max()
    }

    /// Lowers this system's schedule for `model` at `batch` into an
    /// [`IterationSpec`]; `None` if infeasible. This is the spec
    /// [`System::simulate`] runs — exposing it lets tools analyze the
    /// schedule (e.g. `ratel-bench verify-plans`) without simulating it.
    pub fn spec(
        self,
        server: &ServerConfig,
        model: &ModelConfig,
        batch: usize,
    ) -> Option<IterationSpec> {
        if !self.feasible(server, model, batch) {
            return None;
        }
        let profile = ModelProfile::new(model, batch);
        let hw = HardwareProfile::measure(server, &profile, batch);
        Some(match self {
            System::Ratel => {
                let plan = ActivationPlanner::new(&hw, &profile).plan();
                RatelSchedule {
                    profile: &hw,
                    model: &profile,
                    plan: &plan,
                    mode: GradOffloadMode::OptimizedActive,
                    gpus: server.gpu_count,
                }
                .to_spec()
            }
            System::ZeroInfinity => {
                ds_spec(&hw, &profile, server.gpu_count, ParamSource::Ssd, true)
            }
            System::ZeroOffload => {
                ds_spec(&hw, &profile, server.gpu_count, ParamSource::Host, false)
            }
            System::ColossalAi => colossal_spec(&hw, &profile, server.gpu_count),
            System::FlashNeuron => flashneuron_spec(&hw, &profile),
            System::G10 => g10_spec(&hw, &profile),
        })
    }

    /// Simulates one iteration; `None` if infeasible.
    pub fn simulate(
        self,
        server: &ServerConfig,
        model: &ModelConfig,
        batch: usize,
    ) -> Option<IterationReport> {
        let spec = self.spec(server, model, batch)?;
        let profile = ModelProfile::new(model, batch);
        Some(spec.simulate(&profile))
    }

    /// Peak throughput over a batch sweep: `(batch, report)` of the best
    /// feasible batch, or `None` if nothing fits.
    pub fn best_over_batches(
        self,
        server: &ServerConfig,
        model: &ModelConfig,
        batches: &[usize],
    ) -> Option<(usize, IterationReport)> {
        batches
            .iter()
            .filter_map(|&b| self.simulate(server, model, b).map(|r| (b, r)))
            .max_by(|a, b| {
                a.1.throughput_items_per_sec
                    .total_cmp(&b.1.throughput_items_per_sec)
            })
    }
}

fn items(profile: &ModelProfile, gpus: usize) -> f64 {
    match profile.config.kind {
        ModelKind::DecoderLm => (profile.batch * profile.config.seq_len * gpus) as f64,
        ModelKind::DiT => (profile.batch * gpus) as f64,
    }
}

/// Shared DeepSpeed-family schedule: inter-block checkpoints to host, full
/// intra recomputation, separate-stage CPU Adam.
fn ds_spec(
    hw: &HardwareProfile,
    profile: &ModelProfile,
    gpus: usize,
    params: ParamSource,
    states_on_ssd: bool,
) -> IterationSpec {
    let mut layers = Vec::with_capacity(profile.layers.len());
    let mut staging_bytes_per_layer: f64 = 0.0;
    for layer in &profile.layers {
        let p = layer.params;
        let recompute: f64 = layer.units.iter().map(|u| u.recompute_flops).sum();
        staging_bytes_per_layer = staging_bytes_per_layer.max(layer.inter_act_bytes);
        layers.push(LayerTask {
            label: layer.label.clone(),
            p16_bytes: 2.0 * p,
            param_source: params,
            fwd_flops: layer.forward_flops,
            bwd_flops: 2.0 * layer.forward_flops + recompute,
            act_to_host_bytes: layer.inter_act_bytes,
            act_to_ssd_bytes: 0.0,
            refetch_in_backward: true,
            grad_bytes: 2.0 * p,
            grad_spill_to_ssd: states_on_ssd,
            optimizer: if p == 0.0 {
                OptimizerKind::None
            } else if states_on_ssd {
                OptimizerKind::CpuOutOfCore {
                    // Reads P32+OS32 plus the spilled G16 back from SSD.
                    read_bytes: 14.0 * p,
                    write_bytes: 14.0 * p,
                    cpu_params: p,
                }
            } else {
                OptimizerKind::CpuInMemory { cpu_params: p }
            },
        });
    }
    IterationSpec {
        layers,
        mode: GradOffloadMode::SeparateStage,
        rates: LinkRates::from_profile(hw),
        gpus,
        items_per_iteration: items(profile, gpus),
        per_layer_overhead_seconds: DS_LAYER_OVERHEAD_SEC
            + staging_bytes_per_layer / DS_STAGING_BYTES_PER_SEC,
    }
}

/// Colossal-AI: checkpoints never leave the GPU (no activation traffic),
/// full recomputation, serialized Gemini optimizer with heavy per-layer
/// chunk management.
fn colossal_spec(hw: &HardwareProfile, profile: &ModelProfile, gpus: usize) -> IterationSpec {
    let mut layers = Vec::with_capacity(profile.layers.len());
    for layer in &profile.layers {
        let p = layer.params;
        let recompute: f64 = layer.units.iter().map(|u| u.recompute_flops).sum();
        layers.push(LayerTask {
            label: layer.label.clone(),
            p16_bytes: 2.0 * p,
            param_source: ParamSource::Ssd,
            fwd_flops: layer.forward_flops,
            bwd_flops: 2.0 * layer.forward_flops + recompute,
            act_to_host_bytes: 0.0,
            act_to_ssd_bytes: 0.0,
            refetch_in_backward: true,
            grad_bytes: 2.0 * p,
            grad_spill_to_ssd: true,
            optimizer: if p == 0.0 {
                OptimizerKind::None
            } else {
                OptimizerKind::CpuOutOfCore {
                    read_bytes: 14.0 * p,
                    write_bytes: 14.0 * p,
                    cpu_params: p,
                }
            },
        });
    }
    IterationSpec {
        layers,
        mode: GradOffloadMode::SeparateStage,
        rates: LinkRates::from_profile(hw),
        gpus,
        items_per_iteration: items(profile, gpus),
        per_layer_overhead_seconds: COLOSSAL_LAYER_OVERHEAD_SEC,
    }
}

/// FlashNeuron: states never move, all activations stream to the SSDs
/// (through host — no GPUDirect on consumer GPUs), in-GPU Adam.
fn flashneuron_spec(hw: &HardwareProfile, profile: &ModelProfile) -> IterationSpec {
    let mut layers = Vec::with_capacity(profile.layers.len());
    for layer in &profile.layers {
        let p = layer.params;
        let acts = layer.inter_act_bytes + layer.intra_act_bytes();
        layers.push(LayerTask {
            label: layer.label.clone(),
            p16_bytes: 0.0,
            param_source: ParamSource::Gpu,
            fwd_flops: layer.forward_flops,
            bwd_flops: 2.0 * layer.forward_flops,
            act_to_host_bytes: 0.0,
            act_to_ssd_bytes: acts,
            refetch_in_backward: true,
            grad_bytes: 0.0,
            grad_spill_to_ssd: false,
            optimizer: if p == 0.0 {
                OptimizerKind::None
            } else {
                OptimizerKind::GpuResident {
                    gpu_flops: GPU_ADAM_FLOPS_PER_PARAM * p,
                }
            },
        });
    }
    IterationSpec {
        layers,
        mode: GradOffloadMode::SeparateStage,
        rates: LinkRates::from_profile(hw),
        gpus: 1,
        items_per_iteration: items(profile, 1),
        per_layer_overhead_seconds: 0.0,
    }
}

/// G10: unified tensor space — states on SSD, *all* activations offloaded
/// with no recomputation, in-GPU Adam shuttling 12P/14P per direction
/// through the PCIe link every iteration (§III-C).
fn g10_spec(hw: &HardwareProfile, profile: &ModelProfile) -> IterationSpec {
    let mut layers = Vec::with_capacity(profile.layers.len());
    for layer in &profile.layers {
        let p = layer.params;
        let acts = layer.inter_act_bytes + layer.intra_act_bytes();
        layers.push(LayerTask {
            label: layer.label.clone(),
            p16_bytes: 2.0 * p,
            param_source: ParamSource::Ssd,
            fwd_flops: layer.forward_flops,
            bwd_flops: 2.0 * layer.forward_flops,
            act_to_host_bytes: 0.0,
            act_to_ssd_bytes: acts,
            refetch_in_backward: true,
            grad_bytes: 2.0 * p,
            grad_spill_to_ssd: true,
            optimizer: if p == 0.0 {
                OptimizerKind::None
            } else {
                OptimizerKind::GpuOverSsd {
                    fetch_bytes: 14.0 * p,
                    writeback_bytes: 14.0 * p,
                    gpu_flops: GPU_ADAM_FLOPS_PER_PARAM * p,
                }
            },
        });
    }
    IterationSpec {
        layers,
        mode: GradOffloadMode::SeparateStage,
        rates: LinkRates::from_profile(hw),
        gpus: 1,
        items_per_iteration: items(profile, 1),
        per_layer_overhead_seconds: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_hw::units::GIB;
    use ratel_hw::GpuSpec;
    use ratel_model::zoo;

    fn server() -> ServerConfig {
        ServerConfig::paper_default()
    }

    #[test]
    fn flashneuron_cannot_even_fit_6b() {
        // §III-A / Fig. 2a: FlashNeuron tops out around 1.55B on a 24 GB
        // GPU because it keeps 16 bytes/param of states in device memory.
        assert!(!System::FlashNeuron.feasible(&server(), &zoo::llm("6B"), 1));
        let tiny = ModelConfig::decoder_lm("1.4B", 24, 16, 2048);
        assert!(System::FlashNeuron.feasible(&server(), &tiny, 1));
    }

    #[test]
    fn zero_infinity_maxes_at_135b_with_768g() {
        let max = System::ZeroInfinity.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        assert!((130.0..140.0).contains(&max), "max = {max}");
        // And cannot train 175B even with 768 GB (§III-B issue 3).
        assert!(!System::ZeroInfinity.feasible(&server(), &zoo::llm("175B"), 1));
    }

    #[test]
    fn max_size_staircase_matches_fig2a() {
        // ZeRO-Infinity's max trainable size vs main memory (Fig. 2a).
        let expect = [(128u64, 13.0), (256, 30.0), (512, 70.0), (768, 135.0)];
        for (gib, nominal) in expect {
            let s = server().with_main_memory(gib * GIB);
            let max = System::ZeroInfinity.max_trainable_billions(&s, &zoo::llm_ladder(), 1);
            let rel = (max - nominal).abs() / nominal;
            assert!(rel < 0.15, "{gib} GiB: max {max:.1}B, expected ~{nominal}B");
        }
    }

    #[test]
    fn zero_offload_maxes_at_30b() {
        let max = System::ZeroOffload.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        assert!((28.0..35.0).contains(&max), "max = {max}");
    }

    #[test]
    fn colossal_sits_between_offload_and_infinity() {
        let col = System::ColossalAi.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        let inf = System::ZeroInfinity.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        let off = System::ZeroOffload.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        assert!(col > off && col < inf, "off {off} col {col} inf {inf}");
    }

    #[test]
    fn ratel_dominates_every_baseline_in_max_size() {
        // Fig. 6a: Ratel trains significantly larger models at every
        // memory capacity.
        for gib in [128u64, 256, 384, 512, 640, 768] {
            let s = server().with_main_memory(gib * GIB);
            let ratel = System::Ratel.max_trainable_billions(&s, &zoo::llm_ladder(), 1);
            for other in [
                System::ZeroInfinity,
                System::ZeroOffload,
                System::ColossalAi,
                System::FlashNeuron,
            ] {
                let m = other.max_trainable_billions(&s, &zoo::llm_ladder(), 1);
                assert!(
                    ratel > m,
                    "{gib} GiB: Ratel {ratel:.0}B vs {} {m:.0}B",
                    other.name()
                );
            }
        }
    }

    #[test]
    fn ratel_is_at_least_2x_zero_infinity_at_768g() {
        // "2.04x larger than ZeRO-Infinity" (§V-B).
        let ratel = System::Ratel.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        let zero = System::ZeroInfinity.max_trainable_billions(&server(), &zoo::llm_ladder(), 1);
        let ratio = ratel / zero;
        assert!((1.8..2.3).contains(&ratio), "ratio = {ratio:.2}");
    }

    #[test]
    fn g10_requires_gpudirect() {
        assert!(!System::G10.feasible(&server(), &zoo::llm("13B"), 32));
        let dgx_ish = server().with_gpu(GpuSpec::a100_80g());
        assert!(System::G10.feasible(&dgx_ish, &zoo::llm("13B"), 32));
    }

    #[test]
    fn throughput_ordering_matches_fig5a() {
        // Best-over-batches at 13B on the 4090: Ratel > ZeRO-Offload >
        // ZeRO-Infinity > Colossal-AI.
        let m = zoo::llm("13B");
        let batches = [8usize, 16, 32, 64, 128];
        let best = |sys: System| {
            sys.best_over_batches(&server(), &m, &batches)
                .map(|(_, r)| r.throughput_items_per_sec)
                .unwrap_or(0.0)
        };
        let ratel = best(System::Ratel);
        let offload = best(System::ZeroOffload);
        let infinity = best(System::ZeroInfinity);
        let colossal = best(System::ColossalAi);
        assert!(
            ratel > offload && offload > infinity && infinity > colossal,
            "ratel {ratel:.0} offload {offload:.0} infinity {infinity:.0} colossal {colossal:.0}"
        );
        // Win factors in the paper's ballpark: 2.32x / 3.46x / 8.02x.
        assert!(
            (1.4..3.5).contains(&(ratel / offload)),
            "ratel/offload = {:.2}",
            ratel / offload
        );
        assert!(
            (2.0..5.0).contains(&(ratel / infinity)),
            "ratel/infinity = {:.2}",
            ratel / infinity
        );
        assert!(
            (5.0..12.0).contains(&(ratel / colossal)),
            "ratel/colossal = {:.2}",
            ratel / colossal
        );
    }

    #[test]
    fn zero_infinity_gpu_busy_fraction_matches_fig2b() {
        // Fig. 2b: ~36% GPU busy at 13B, batch 32.
        let r = System::ZeroInfinity
            .simulate(&server(), &zoo::llm("13B"), 32)
            .unwrap();
        assert!(
            (0.2..0.5).contains(&r.gpu_busy_fraction),
            "busy = {:.2}",
            r.gpu_busy_fraction
        );
    }

    #[test]
    fn zero_infinity_optimizer_proportion_matches_fig2c() {
        // Fig. 2c: the optimizer stage is 30-60% of a step.
        for batch in [8usize, 16, 32] {
            let r = System::ZeroInfinity
                .simulate(&server(), &zoo::llm("13B"), batch)
                .unwrap();
            assert!(
                (0.3..0.75).contains(&r.optimizer_fraction),
                "batch {batch}: optimizer fraction {:.2}",
                r.optimizer_fraction
            );
        }
    }

    #[test]
    fn g10_optimizer_stage_is_transfer_bound() {
        // Fig. 1b: G10's optimizer stage moves 14P per direction while the
        // GPU kernel takes ~0.1 s.
        let dgx_ish = server().with_gpu(GpuSpec::a100_80g());
        let r = System::G10
            .simulate(&dgx_ish, &zoo::llm("13B"), 32)
            .unwrap();
        // Optimizer window must dominate a pure-kernel estimate by far.
        assert!(
            r.stage_seconds[2] > 5.0,
            "optimizer stage {:.2}s",
            r.stage_seconds[2]
        );
    }

    #[test]
    fn zero_infinity_multi_gpu_cap_is_70b() {
        // Footnote 6: 135B single-GPU, but only 70B on the 2/4-GPU server.
        let single = server();
        let quad = server().with_gpu_count(4);
        assert!(System::ZeroInfinity.feasible(&single, &zoo::llm("135B"), 1));
        assert!(!System::ZeroInfinity.feasible(&quad, &zoo::llm("135B"), 1));
        assert!(System::ZeroInfinity.feasible(&quad, &zoo::llm("70B"), 1));
    }

    #[test]
    fn infeasible_simulation_returns_none() {
        assert!(System::FlashNeuron
            .simulate(&server(), &zoo::llm("13B"), 32)
            .is_none());
    }
}
