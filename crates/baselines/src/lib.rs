#![warn(missing_docs)]
//! The paper's comparison systems, each reimplemented as a *strategy*:
//! a memory/feasibility model plus an iteration-schedule builder over the
//! same simulator substrate Ratel uses.
//!
//! * [`systems`] — whole training systems for the end-to-end comparisons
//!   (Figs. 1/2/5/6/10/11): ZeRO-Infinity, ZeRO-Offload, Colossal-AI,
//!   FlashNeuron, and G10.
//! * [`act_strategies`] — activation-management strategies grafted onto
//!   Ratel's runtime for the §V-E ablation (Fig. 9a / Table V): static
//!   ZeRO-style checkpointing, Capuchin, G10's swap-everything policy,
//!   and a Checkmate-style memory-optimal rematerializer.
//! * [`megatron`] — Megatron-LM tensor parallelism on a DGX-A100 for the
//!   cost-effectiveness comparison (Fig. 13).
//! * [`fastdit`] — the in-GPU Fast-DiT trainer for the diffusion workload
//!   (Fig. 12).
//!
//! Calibration constants follow DESIGN.md; every deviation from the
//! paper's absolute numbers is tracked in EXPERIMENTS.md.

pub mod act_strategies;
pub mod fastdit;
pub mod megatron;
pub mod systems;

pub use act_strategies::ActStrategy;
pub use systems::System;
