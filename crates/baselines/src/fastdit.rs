//! Fast-DiT: the in-GPU diffusion-transformer trainer (§V-H, Fig. 12).
//!
//! Fast-DiT keeps model states *and* activations in device memory, so it
//! OOMs quickly as the backbone grows and must shrink the batch long
//! before that, which is exactly what Fig. 12 shows. Its iteration time
//! is pure compute (no offloading traffic).

use ratel_hw::GpuSpec;
use ratel_model::{ModelConfig, ModelProfile};

/// Fixed CUDA/runtime overhead Fast-DiT needs on the device.
const GPU_OVERHEAD_BYTES: f64 = 1.5e9;

/// Result of a Fast-DiT iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastDitReport {
    /// Iteration seconds.
    pub iteration_seconds: f64,
    /// Images per second.
    pub images_per_sec: f64,
}

/// Whether the model at `batch` fits entirely in `gpu` memory: 16
/// bytes/param of states plus all activations.
pub fn feasible(gpu: &GpuSpec, model: &ModelConfig, batch: usize) -> bool {
    let profile = ModelProfile::new(model, batch);
    let need = 16.0 * profile.total_params() + profile.total_act_bytes() + GPU_OVERHEAD_BYTES;
    need <= gpu.memory_bytes as f64
}

/// Simulates one iteration; `None` on OOM.
pub fn simulate(gpu: &GpuSpec, model: &ModelConfig, batch: usize) -> Option<FastDitReport> {
    if !feasible(gpu, model, batch) {
        return None;
    }
    let profile = ModelProfile::new(model, batch);
    let t = 3.0 * profile.forward_flops() / gpu.effective_flops(batch);
    Some(FastDitReport {
        iteration_seconds: t,
        images_per_sec: batch as f64 / t,
    })
}

/// Peak images/s over a batch sweep; `None` if nothing fits.
pub fn best_images_per_sec(
    gpu: &GpuSpec,
    model: &ModelConfig,
    batches: &[usize],
) -> Option<(usize, f64)> {
    batches
        .iter()
        .filter_map(|&b| simulate(gpu, model, b).map(|r| (b, r.images_per_sec)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_model::zoo;

    #[test]
    fn fastdit_ooms_on_10b_and_above() {
        // Fig. 12: the 10B/20B/40B DiT backbones OOM on a 24 GB GPU.
        let gpu = GpuSpec::rtx4090();
        let dits = zoo::dit_ladder();
        for m in &dits {
            let fits = feasible(&gpu, m, 1);
            if m.size_billions() >= 2.0 {
                assert!(!fits, "{} should OOM", m.name);
            } else {
                assert!(fits, "{} should fit at batch 1", m.name);
            }
        }
    }

    #[test]
    fn batch_size_shrinks_with_model_size() {
        let gpu = GpuSpec::rtx4090();
        let batches = [1usize, 2, 4, 8, 16, 32, 64];
        let max_batch = |name: &str| {
            let m = zoo::dit_ladder()
                .into_iter()
                .find(|m| m.name == name)
                .unwrap();
            batches
                .iter()
                .copied()
                .filter(|&b| feasible(&gpu, &m, b))
                .max()
                .unwrap_or(0)
        };
        assert!(max_batch("DiT-0.67B") > max_batch("DiT-1.4B"));
        assert_eq!(max_batch("DiT-10B"), 0);
    }

    #[test]
    fn throughput_is_finite_and_positive_when_feasible() {
        let gpu = GpuSpec::rtx4090();
        let m = &zoo::dit_ladder()[0];
        let (_, imgs) = best_images_per_sec(&gpu, m, &[1, 2, 4, 8, 16, 32]).unwrap();
        assert!(imgs > 1.0 && imgs.is_finite(), "{imgs}");
    }
}
