//! Megatron-LM tensor parallelism on a DGX-A100 (§V-I, Fig. 13).
//!
//! Megatron keeps everything in GPU memory across 8 NVLink-connected
//! A100-80G GPUs and never offloads, so its iteration time is an analytic
//! compute + all-reduce model rather than a task graph over PCIe/SSD
//! resources: per layer, tensor parallelism all-reduces the activations
//! twice in forward and twice in backward over 600 GB/s NVLink.

use ratel_hw::GpuSpec;
use ratel_model::{ModelConfig, ModelProfile};

/// NVLink all-reduce bus bandwidth per GPU, bytes/s (A100 NVSwitch).
const NVLINK_BUS_BW: f64 = 300e9;
/// Fraction of peak an 8-way tensor-parallel transformer sustains
/// (kernel splits shrink per-GPU matmul sizes).
const TP_EFFICIENCY: f64 = 0.62;
/// GPUs in the DGX-A100.
pub const DGX_GPUS: usize = 8;

/// Result of the Megatron model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MegatronReport {
    /// Iteration seconds.
    pub iteration_seconds: f64,
    /// Tokens per second.
    pub tokens_per_sec: f64,
}

/// Whether the DGX can hold `model` at `batch` with 8-way tensor
/// parallelism (16 bytes/param of states + the activation working set,
/// both sharded).
pub fn feasible(model: &ModelConfig, batch: usize) -> bool {
    let profile = ModelProfile::new(model, batch);
    let p = profile.total_params();
    // Megatron checkpoints activations (keeps the inter-layer tensors,
    // recomputes within blocks), so only the checkpoints count here; the
    // recompute cost is folded into `simulate`'s 3.3x forward factor.
    let per_gpu = (16.0 * p + profile.inter_act_bytes()) / DGX_GPUS as f64 + 4e9;
    per_gpu <= GpuSpec::a100_80g().memory_bytes as f64
}

/// Simulates one Megatron iteration; `None` if it does not fit.
pub fn simulate(model: &ModelConfig, batch: usize) -> Option<MegatronReport> {
    if !feasible(model, batch) {
        return None;
    }
    let profile = ModelProfile::new(model, batch);
    let gpu = GpuSpec::a100_80g();
    let thp = gpu.effective_flops(batch) * TP_EFFICIENCY * DGX_GPUS as f64;
    // 3x for forward+backward plus ~0.3x for checkpoint recomputation.
    let compute = 3.3 * profile.forward_flops() / thp;
    // 4 all-reduces of the b*s*h activation per layer per iteration
    // (2 forward + 2 backward), ring cost 2(g-1)/g per byte.
    let msg = (batch * model.seq_len * model.hidden) as f64 * 2.0;
    let g = DGX_GPUS as f64;
    let allreduce = 4.0 * model.layers as f64 * msg * (2.0 * (g - 1.0) / g) / (NVLINK_BUS_BW * g);
    let t = compute + allreduce;
    Some(MegatronReport {
        iteration_seconds: t,
        tokens_per_sec: (batch * model.seq_len) as f64 / t,
    })
}

/// Peak tokens/s over a batch sweep.
pub fn best_tokens_per_sec(model: &ModelConfig, batches: &[usize]) -> Option<(usize, f64)> {
    batches
        .iter()
        .filter_map(|&b| simulate(model, b).map(|r| (b, r.tokens_per_sec)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_model::zoo;

    #[test]
    fn thirty_b_is_the_largest_dgx_model() {
        // §V-I: "the 30B model (the largest model Megatron-LM can
        // fine-tune on the DGX machine)".
        assert!(feasible(&zoo::llm("30B"), 8));
        assert!(!feasible(&zoo::llm("70B"), 8));
    }

    #[test]
    fn dgx_throughput_is_in_the_thousands() {
        // 8 A100s on a 30B model: multiple thousand tokens/s.
        let (_, tput) = best_tokens_per_sec(&zoo::llm("30B"), &[8, 16, 32]).unwrap();
        assert!((2_000.0..20_000.0).contains(&tput), "{tput:.0}");
    }

    #[test]
    fn allreduce_overhead_is_minor_on_nvlink() {
        let r8 = simulate(&zoo::llm("30B"), 8).unwrap();
        let r32 = simulate(&zoo::llm("30B"), 32).unwrap();
        // Throughput grows with batch (compute efficiency), comm stays
        // proportionally small.
        assert!(r32.tokens_per_sec > r8.tokens_per_sec);
    }
}
