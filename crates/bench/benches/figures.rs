//! Criterion benches regenerating every figure/table of the paper — one
//! group per figure, so `cargo bench` both times the harness and re-runs
//! the full reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use ratel_bench::figs;

fn bench_figures(c: &mut Criterion) {
    for id in figs::ALL {
        c.bench_function(&format!("repro/{id}"), |b| {
            b.iter(|| {
                let tables = figs::run(id).expect("known figure id");
                std::hint::black_box(tables.len())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
