//! Overhead of the always-on flight recorder.
//!
//! The recorder is the one piece of the observability plane that stays
//! armed even with span telemetry disabled, so its cost is what every
//! un-instrumented training step pays. Two angles:
//!
//! * the raw per-event cost (enabled vs the kill-switch short-circuit);
//! * a full `train_step` with the recorder enabled vs disabled — the
//!   delta is the plane's true per-step tax, which must stay within the
//!   BENCH regression gate (<1% of a step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ratel::engine::data::random_batch;
use ratel::engine::scaler::ScalePolicy;
use ratel::engine::{ActDecision, EngineConfig, ExecutionOptions, RatelEngine};
use ratel_obs::{flight, EventKind};
use ratel_tensor::{AdamParams, GptConfig};

fn bench_obs_overhead(c: &mut Criterion) {
    // Raw event cost: one fetch_add plus a few relaxed stores when
    // enabled, one relaxed load when killed.
    flight().set_enabled(true);
    c.bench_function("obs/flight_record_enabled", |b| {
        b.iter(|| {
            flight().record(
                EventKind::Transfer,
                0,
                black_box("layer3/p16"),
                black_box(4096),
                7,
            )
        })
    });
    flight().set_enabled(false);
    c.bench_function("obs/flight_record_disabled", |b| {
        b.iter(|| {
            flight().record(
                EventKind::Transfer,
                0,
                black_box("layer3/p16"),
                black_box(4096),
                7,
            )
        })
    });
    flight().set_enabled(true);

    // Whole-step cost with span telemetry off (the default production
    // configuration): the only observability work left is the flight
    // recorder, so enabled-vs-disabled bounds its per-step overhead.
    let model = GptConfig::tiny();
    let (tokens, targets) = random_batch(&model, 1);
    let make = || {
        RatelEngine::new(EngineConfig {
            model,
            seed: 42,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::SwapToHost; model.layers],
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap()
    };

    let mut recorded = make();
    flight().set_enabled(true);
    c.bench_function("obs/step_flight_enabled", |b| {
        b.iter(|| black_box(recorded.train_step(&tokens, &targets).unwrap().loss))
    });

    let mut silent = make();
    flight().set_enabled(false);
    c.bench_function("obs/step_flight_disabled", |b| {
        b.iter(|| black_box(silent.train_step(&tokens, &targets).unwrap().loss))
    });
    flight().set_enabled(true);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_obs_overhead
}
criterion_main!(benches);
