//! Benchmarks of the planning and simulation machinery: Algorithm 1, the
//! analytic iteration-time model, and the discrete-event simulator on a
//! full 13B iteration graph.

use criterion::{criterion_group, criterion_main, Criterion};
use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_hw::ServerConfig;
use ratel_model::{zoo, ModelProfile};
use ratel_sim::simulate;

fn bench_planner_sim(c: &mut Criterion) {
    let server = ServerConfig::paper_default();
    let model = ModelProfile::new(&zoo::llm("13B"), 32);
    let hw = HardwareProfile::measure(&server, &model, 32);

    c.bench_function("planner/algorithm1_13b", |b| {
        b.iter(|| std::hint::black_box(ActivationPlanner::new(&hw, &model).plan()))
    });

    let planner = ActivationPlanner::new(&hw, &model);
    c.bench_function("planner/iter_time_eval", |b| {
        b.iter(|| std::hint::black_box(planner.iter_time(100e9, 500e12)))
    });

    let plan = planner.plan();
    let sched = RatelSchedule {
        profile: &hw,
        model: &model,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    };
    let (graph, _, _) = sched.to_spec().build();
    c.bench_function("sim/build_13b_iteration_graph", |b| {
        b.iter(|| std::hint::black_box(sched.to_spec().build().0.len()))
    });
    c.bench_function("sim/simulate_13b_iteration", |b| {
        b.iter(|| std::hint::black_box(simulate(&graph).makespan))
    });

    let big = ModelProfile::new(&zoo::llm("175B"), 8);
    let big_hw = HardwareProfile::measure(&server, &big, 8);
    c.bench_function("planner/algorithm1_175b", |b| {
        b.iter(|| std::hint::black_box(ActivationPlanner::new(&big_hw, &big).plan()))
    });

    c.bench_function("profile/hardware_measure", |b| {
        b.iter(|| std::hint::black_box(HardwareProfile::measure(&server, &model, 32)))
    });
}

criterion_group!(benches, bench_planner_sim);
criterion_main!(benches);
