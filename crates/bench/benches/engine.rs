//! Benchmarks of the real out-of-core engine: a full training step under
//! each activation policy, against the in-memory reference.

use criterion::{criterion_group, criterion_main, Criterion};
use ratel::engine::data::random_batch;
use ratel::engine::reference::ReferenceTrainer;
use ratel::engine::scaler::ScalePolicy;
use ratel::engine::{ActDecision, EngineConfig, ExecutionOptions, ExecutorOptions, RatelEngine};
use ratel::offload::GradOffloadMode;
use ratel_tensor::{AdamParams, GptConfig};

fn bench_engine(c: &mut Criterion) {
    let model = GptConfig::tiny();
    let (tokens, targets) = random_batch(&model, 1);

    let make = |acts: Vec<ActDecision>, offload: GradOffloadMode| {
        RatelEngine::new(EngineConfig {
            model,
            seed: 42,
            adam: AdamParams::default(),
            act_decisions: acts,
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::Executor(ExecutorOptions {
                offload,
                ..ExecutorOptions::default()
            }),
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: ratel::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap()
    };

    let mut swap_host = make(
        vec![ActDecision::SwapToHost; model.layers],
        GradOffloadMode::OptimizedActive,
    );
    c.bench_function("engine/step_swap_host", |b| {
        b.iter(|| std::hint::black_box(swap_host.train_step(&tokens, &targets).unwrap().loss))
    });

    let mut swap_ssd = make(
        vec![ActDecision::SwapToSsd; model.layers],
        GradOffloadMode::OptimizedActive,
    );
    c.bench_function("engine/step_swap_ssd", |b| {
        b.iter(|| std::hint::black_box(swap_ssd.train_step(&tokens, &targets).unwrap().loss))
    });

    let mut recompute = make(
        vec![ActDecision::Recompute; model.layers],
        GradOffloadMode::OptimizedActive,
    );
    c.bench_function("engine/step_recompute", |b| {
        b.iter(|| std::hint::black_box(recompute.train_step(&tokens, &targets).unwrap().loss))
    });

    let mut separate = make(
        vec![ActDecision::SwapToHost; model.layers],
        GradOffloadMode::SeparateStage,
    );
    c.bench_function("engine/step_separate_stage", |b| {
        b.iter(|| std::hint::black_box(separate.train_step(&tokens, &targets).unwrap().loss))
    });

    let mut reference = ReferenceTrainer::new(model, 42, AdamParams::default());
    c.bench_function("engine/step_in_memory_reference", |b| {
        b.iter(|| std::hint::black_box(reference.train_step(&tokens, &targets)))
    });

    // Telemetry overhead: the recorder's disabled path is one relaxed
    // atomic load per would-be event; enabled, every span/transfer takes
    // a short critical section. These two series bound the cost.
    let mut untraced = make(
        vec![ActDecision::SwapToHost; model.layers],
        GradOffloadMode::OptimizedActive,
    );
    c.bench_function("engine/step_telemetry_disabled", |b| {
        b.iter(|| std::hint::black_box(untraced.train_step(&tokens, &targets).unwrap().loss))
    });
    let mut traced = make(
        vec![ActDecision::SwapToHost; model.layers],
        GradOffloadMode::OptimizedActive,
    );
    traced.enable_telemetry();
    c.bench_function("engine/step_telemetry_enabled", |b| {
        b.iter(|| std::hint::black_box(traced.train_step(&tokens, &targets).unwrap().loss))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine
}
criterion_main!(benches, feature_benches);

fn bench_engine_features(c: &mut Criterion) {
    use ratel::engine::data::random_batch;
    let model = GptConfig::tiny();
    let (tokens, targets) = random_batch(&model, 2);

    let mk = || {
        RatelEngine::new(EngineConfig {
            model,
            seed: 42,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::SwapToHost; model.layers],
            gpu_capacity: None,
            host_capacity: None,
            execution: ExecutionOptions::default(),
            loss_scale: ratel::engine::scaler::ScalePolicy::Static(1024.0),
            grad_clip: Some(1.0),
            lr_schedule: ratel::engine::lr::LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .unwrap()
    };

    let mut accum = mk();
    let micros = vec![
        (tokens.clone(), targets.clone()),
        (tokens.clone(), targets.clone()),
    ];
    c.bench_function("engine/step_accumulated_2micro", |b| {
        b.iter(|| std::hint::black_box(accum.train_step_accumulated(&micros).unwrap().loss))
    });

    let mut gen = mk();
    c.bench_function("engine/generate_4_tokens", |b| {
        b.iter(|| std::hint::black_box(gen.generate(&tokens[..8], 4).unwrap()))
    });

    c.bench_function("engine/profiling_stage", |b| {
        b.iter(|| {
            let store =
                ratel_storage::TieredStore::new(ratel_storage::TierConfig::unbounded_temp())
                    .unwrap();
            std::hint::black_box(
                ratel::engine::profiler::MeasuredProfile::measure(model, &store, 1 << 16).unwrap(),
            )
        })
    });
}

criterion_group! {
    name = feature_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_features
}
