//! Microbenchmarks of the tensor substrate: the kernels the real engine
//! spends its time in.

use criterion::{criterion_group, criterion_main, Criterion};
use ratel_tensor::ops::{gelu, layernorm, matmul, softmax_rows};
use ratel_tensor::{Adam, AdamParams, MultiHeadAttention, Tensor, TransformerBlock};

fn bench_tensor_ops(c: &mut Criterion) {
    let a = Tensor::randn(&[128, 256], 1.0, 1);
    let b = Tensor::randn(&[256, 128], 1.0, 2);
    c.bench_function("tensor/matmul_128x256x128", |bch| {
        bch.iter(|| std::hint::black_box(matmul(&a, &b)))
    });

    let x = Tensor::randn(&[512, 256], 1.0, 3);
    let gamma = Tensor::full(&[256], 1.0);
    let beta = Tensor::zeros(&[256]);
    c.bench_function("tensor/layernorm_512x256", |bch| {
        bch.iter(|| std::hint::black_box(layernorm(&x, &gamma, &beta, 1e-5)))
    });
    c.bench_function("tensor/gelu_512x256", |bch| {
        bch.iter(|| std::hint::black_box(gelu(&x)))
    });
    c.bench_function("tensor/softmax_512x256", |bch| {
        bch.iter(|| std::hint::black_box(softmax_rows(&x)))
    });

    let attn = MultiHeadAttention::new(128, 8, 4);
    let ax = Tensor::randn(&[2 * 64, 128], 0.5, 5);
    c.bench_function("tensor/attention_fwd_b2_s64_h128", |bch| {
        bch.iter(|| std::hint::black_box(attn.forward(&ax, 2, 64)))
    });

    let block = TransformerBlock::new(2, 64, 128, 8, 6);
    let bx = Tensor::randn(&[2 * 64, 128], 0.5, 7);
    let (_, saved) = block.forward(&bx);
    let dy = Tensor::randn(&[2 * 64, 128], 1.0, 8);
    c.bench_function("tensor/block_fwd_b2_s64_h128", |bch| {
        bch.iter(|| std::hint::black_box(block.forward(&bx)))
    });
    c.bench_function("tensor/block_bwd_b2_s64_h128", |bch| {
        bch.iter(|| std::hint::black_box(block.backward(&bx, &saved, &dy)))
    });

    let n = 1 << 16;
    let mut adam = Adam::new(n);
    let mut params = vec![0.1f32; n];
    let grads = vec![0.01f32; n];
    c.bench_function("tensor/adam_64k_params", |bch| {
        bch.iter(|| {
            adam.step(&mut params, &grads, &AdamParams::default());
            std::hint::black_box(params[0])
        })
    });

    let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.001 - 30.0).collect();
    c.bench_function("tensor/f16_encode_64k", |bch| {
        bch.iter(|| std::hint::black_box(ratel_tensor::dtype::encode_f16(&vals)))
    });
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
