//! Microbenchmarks of the tensor substrate: the kernels the real engine
//! spends its time in.
//!
//! Links `ratel_bench::perf`, so the whole bench binary runs under the
//! counting allocator and asserts the zero-allocation contract of the
//! hot paths before timing them.

use criterion::{criterion_group, criterion_main, Criterion};
use ratel_bench::perf::allocation_count;
use ratel_tensor::ops::{add_bias, gelu, layernorm, matmul, softmax_rows};
use ratel_tensor::{Adam, AdamParams, MultiHeadAttention, Tensor, TransformerBlock};

/// Panics if no single call of `f` (of several) runs allocation-free;
/// the minimum ignores allocations from unrelated threads.
fn assert_alloc_free(what: &str, mut f: impl FnMut()) {
    f(); // warm up buffers
    let mut best = u64::MAX;
    for _ in 0..10 {
        let before = allocation_count();
        f();
        best = best.min(allocation_count() - before);
    }
    assert_eq!(best, 0, "{what} allocates at steady state");
}

fn bench_tensor_ops(c: &mut Criterion) {
    // The per-call allocation contract, checked before any timing: a
    // regression that reintroduces a hot-path clone fails the bench run
    // outright instead of showing up as a subtle slowdown.
    {
        let mut x = Tensor::randn(&[8, 512], 1.0, 11);
        let bias = Tensor::randn(&[512], 1.0, 12);
        assert_alloc_free("add_bias", || add_bias(&mut x, &bias));

        // Below the parallel threshold: guaranteed serial, no spawns.
        let n = 4096;
        let mut adam = Adam::new(n);
        let mut params = vec![0.1f32; n];
        let grads = vec![0.01f32; n];
        let hp = AdamParams::default();
        assert_alloc_free("Adam::step (serial)", || {
            adam.step(&mut params, &grads, &hp)
        });

        let mut flat = Vec::new();
        let t = adam.t;
        assert_alloc_free("Adam flat round-trip", || {
            adam.write_flat_into(&mut flat);
            adam.load_flat(&flat, t);
        });
    }

    let a = Tensor::randn(&[128, 256], 1.0, 1);
    let b = Tensor::randn(&[256, 128], 1.0, 2);
    c.bench_function("tensor/matmul_128x256x128", |bch| {
        bch.iter(|| std::hint::black_box(matmul(&a, &b)))
    });

    let x = Tensor::randn(&[512, 256], 1.0, 3);
    let gamma = Tensor::full(&[256], 1.0);
    let beta = Tensor::zeros(&[256]);
    c.bench_function("tensor/layernorm_512x256", |bch| {
        bch.iter(|| std::hint::black_box(layernorm(&x, &gamma, &beta, 1e-5)))
    });
    c.bench_function("tensor/gelu_512x256", |bch| {
        bch.iter(|| std::hint::black_box(gelu(&x)))
    });
    c.bench_function("tensor/softmax_512x256", |bch| {
        bch.iter(|| std::hint::black_box(softmax_rows(&x)))
    });

    let attn = MultiHeadAttention::new(128, 8, 4);
    let ax = Tensor::randn(&[2 * 64, 128], 0.5, 5);
    c.bench_function("tensor/attention_fwd_b2_s64_h128", |bch| {
        bch.iter(|| std::hint::black_box(attn.forward(&ax, 2, 64)))
    });

    let block = TransformerBlock::new(2, 64, 128, 8, 6);
    let bx = Tensor::randn(&[2 * 64, 128], 0.5, 7);
    let (_, saved) = block.forward(&bx);
    let dy = Tensor::randn(&[2 * 64, 128], 1.0, 8);
    c.bench_function("tensor/block_fwd_b2_s64_h128", |bch| {
        bch.iter(|| std::hint::black_box(block.forward(&bx)))
    });
    c.bench_function("tensor/block_bwd_b2_s64_h128", |bch| {
        bch.iter(|| std::hint::black_box(block.backward(&bx, &saved, &dy)))
    });

    let n = 1 << 16;
    let mut adam = Adam::new(n);
    let mut params = vec![0.1f32; n];
    let grads = vec![0.01f32; n];
    c.bench_function("tensor/adam_64k_params", |bch| {
        bch.iter(|| {
            adam.step(&mut params, &grads, &AdamParams::default());
            std::hint::black_box(params[0])
        })
    });

    let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.001 - 30.0).collect();
    c.bench_function("tensor/f16_encode_64k", |bch| {
        bch.iter(|| std::hint::black_box(ratel_tensor::dtype::encode_f16(&vals)))
    });
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
