//! Sim-vs-real validation: the engine's measured traffic and timing must
//! agree with the schedule the simulator predicts for the same
//! configuration (bytes exactly, times loosely — see
//! `ratel_bench::validate`).

use ratel_bench::validate::{run, ValidateConfig};
use ratel_sim::chrome_trace_json_timelines;

#[test]
fn measured_step_agrees_with_the_simulated_schedule() {
    let cfg = ValidateConfig {
        model: "tiny".into(),
        steps: 2,
        // ~4-6 MB/s route caps: slow enough that transfer time dominates
        // scheduling noise, fast enough for a quick test.
        throttle: 2e-4,
        tolerance: 1.5,
        out: None,
    };
    let report = run(&cfg).expect("validation run");

    // Bytes: the spec plans exactly what the engine moves. Any drift is
    // a modelling bug, so this is equality, not a tolerance.
    assert_eq!(
        report.planned_bytes, report.measured_bytes,
        "planned per-route bytes must match the measured step exactly"
    );
    for (i, bytes) in report.measured_bytes.iter().enumerate() {
        assert!(*bytes > 0, "route {i} moved no bytes");
    }

    // Times: throttled transfers dominate, so the simulated schedule
    // must land in the same ballpark. The tolerance is loose because the
    // sim serializes SSD reads+writes on one resource while the store
    // throttles each route independently.
    for stage in &report.stages {
        assert!(
            stage.relative_error() <= cfg.tolerance,
            "stage {} predicted {:.3}s vs measured {:.3}s ({:.0}% off)",
            stage.name,
            stage.predicted,
            stage.measured,
            100.0 * stage.relative_error()
        );
        assert!(stage.predicted > 0.0 && stage.measured > 0.0);
    }

    // The CLI's pass/fail summary must agree with the assertions above.
    assert!(
        report.failures(cfg.tolerance).is_empty(),
        "failures: {:?}",
        report.failures(cfg.tolerance)
    );
    assert!(
        !report.failures(0.0).is_empty(),
        "a zero tolerance must flag every imperfect stage prediction"
    );

    // Active offloading must hide some optimizer time behind backward.
    assert!(
        report.overlap_ratio > 0.0,
        "optimizer overlap ratio was {}, expected > 0 with active_offload",
        report.overlap_ratio
    );
    assert!(report.overlap_ratio <= 1.0 + 1e-9);

    // Throttled routes cannot beat their cap (modulo timestamp jitter).
    for (route, achieved, cap) in &report.bandwidth {
        if let Some(a) = achieved {
            assert!(
                *a <= cap * 1.05,
                "{route:?} achieved {a} B/s above its {cap} B/s throttle"
            );
        }
    }

    // One Chrome trace holds both timelines, named and separated by pid.
    let json = chrome_trace_json_timelines(&[
        report.sim_timeline.clone(),
        report.measured_timeline.clone(),
    ]);
    assert!(json.contains(r#""name":"simulated""#));
    assert!(json.contains(r#""name":"measured""#));
    assert!(json.contains(r#""pid":1"#));
    assert!(json.contains(r#""stage":"optimizer""#));
}
