//! `ratel-bench validate`: sim-vs-real cross-validation of the engine.
//!
//! The simulator predicts iteration timelines from an [`IterationSpec`];
//! the engine actually executes training steps through the tiered store.
//! This module closes the loop: it runs an instrumented
//! [`RatelEngine::train_step`] with per-route throttles derived from a
//! [`ServerConfig`] (scaled down so a test-sized model produces
//! measurable transfers), builds the *matching* spec, simulates it with
//! the same link rates plus compute rates calibrated from a warm-up
//! step, and reports per-stage predicted-vs-measured deltas.
//!
//! Two classes of agreement are checked:
//!
//! * **bytes — exact.** The spec's planned per-route byte totals must
//!   equal the engine's measured [`TrafficSnapshot`] to the byte; both
//!   sides derive from the same P16/P32/OS32 inventory (12P reads, 14P
//!   writes, 2P stages and gradients) and activation shapes, so any
//!   drift is a modelling bug.
//! * **times — within tolerance.** Transfer times follow bytes/rate
//!   under throttling, but the sim serializes SSD reads and writes on
//!   one resource while the store throttles each route independently,
//!   and thread scheduling adds noise — so stage timings are compared
//!   loosely.

use ratel::engine::data::random_batch;
use ratel::engine::lr::LrSchedule;
use ratel::engine::scaler::ScalePolicy;
use ratel::engine::telemetry::StepTelemetry;
use ratel::engine::{ActDecision, EngineConfig, RatelEngine};
use ratel::schedule::{IterationSpec, LayerTask, LinkRates, OptimizerKind, ParamSource};
use ratel::GradOffloadMode;
use ratel_hw::ServerConfig;
use ratel_sim::{simulate, SimReport, Stage, Timeline};
use ratel_storage::{Route, SpanCategory, TrafficSnapshot};
use ratel_tensor::{AdamParams, BlockSaved, GptConfig};

/// What to validate: one engine configuration and a throttle level.
#[derive(Debug, Clone)]
pub struct ValidateConfig {
    /// Model shape name (`tiny` or `small`).
    pub model: String,
    /// Measured steps after the calibration warm-up.
    pub steps: usize,
    /// Fraction of the server's link bandwidths applied as route
    /// throttles (small models need slow links for measurable
    /// transfers).
    pub throttle: f64,
    /// Relative per-stage timing tolerance for the ok/MISMATCH verdict.
    pub tolerance: f64,
    /// Chrome-trace output path (simulated + measured timelines).
    pub out: Option<String>,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            model: "tiny".into(),
            steps: 1,
            throttle: 1e-4,
            tolerance: 0.5,
            out: None,
        }
    }
}

/// Resolves a validate model name to an executable shape.
pub fn validate_model(name: &str) -> Option<GptConfig> {
    match name {
        "tiny" => Some(GptConfig::tiny()),
        "small" => Some(GptConfig {
            vocab: 96,
            seq: 24,
            hidden: 48,
            heads: 6,
            layers: 4,
            batch: 2,
        }),
        _ => None,
    }
}

/// One stage's predicted vs measured wall time.
#[derive(Debug, Clone, Copy)]
pub struct StageDelta {
    /// Stage name (`forward`, `backward+optimizer`, `step`).
    pub name: &'static str,
    /// Simulator prediction, seconds.
    pub predicted: f64,
    /// Engine measurement, seconds (mean over the measured steps).
    pub measured: f64,
}

impl StageDelta {
    /// Relative error of the prediction against the measurement.
    pub fn relative_error(&self) -> f64 {
        if self.measured == 0.0 {
            return if self.predicted == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.predicted - self.measured).abs() / self.measured
    }
}

/// Everything one validation run produced.
pub struct ValidateReport {
    /// Spec-planned bytes per route, indexed like [`Route::ALL`].
    pub planned_bytes: [u64; 4],
    /// Engine-measured per-step byte deltas (identical across steps).
    pub measured_bytes: [u64; 4],
    /// Per-stage predicted-vs-measured wall times.
    pub stages: Vec<StageDelta>,
    /// Measured optimizer-overlap ratio (§IV-C), mean over steps: the
    /// share of optimizer span time inside the backward stage window.
    pub overlap_ratio: f64,
    /// Achieved vs throttled bandwidth per route: `(route, achieved,
    /// throttle_cap)`; achieved is `None` for idle routes.
    pub bandwidth: Vec<(Route, Option<f64>, f64)>,
    /// The simulated timeline (named `simulated`).
    pub sim_timeline: Timeline,
    /// The last measured step's timeline (named `measured`).
    pub measured_timeline: Timeline,
    /// The raw simulation report.
    pub sim: SimReport,
    /// The last measured step's telemetry.
    pub telemetry: StepTelemetry,
}

impl ValidateReport {
    /// Human-readable reasons this run fails validation under
    /// `tolerance`: any planned/measured byte mismatch (always a bug)
    /// plus any stage whose relative error exceeds the tolerance.
    pub fn failures(&self, tolerance: f64) -> Vec<String> {
        let mut out = Vec::new();
        for (i, route) in Route::ALL.iter().enumerate() {
            if self.planned_bytes[i] != self.measured_bytes[i] {
                out.push(format!(
                    "{}: planned {} bytes but measured {}",
                    route.name(),
                    self.planned_bytes[i],
                    self.measured_bytes[i]
                ));
            }
        }
        for stage in &self.stages {
            let err = stage.relative_error();
            if err > tolerance {
                out.push(format!(
                    "stage {}: predicted {:.3}s vs measured {:.3}s ({:.0}% off > {:.0}% tolerance)",
                    stage.name,
                    stage.predicted,
                    stage.measured,
                    100.0 * err,
                    100.0 * tolerance
                ));
            }
        }
        out
    }
}

/// Per-route throttle caps from a server config: PCIe per direction,
/// SSD-array read/write — all scaled by `factor`.
pub fn route_caps(server: &ServerConfig, factor: f64) -> [(Route, f64); 4] {
    [
        (Route::GpuToHost, server.pcie.bandwidth_per_dir * factor),
        (Route::HostToGpu, server.pcie.bandwidth_per_dir * factor),
        (Route::HostToSsd, server.ssds.write_bw() * factor),
        (Route::SsdToHost, server.ssds.read_bw() * factor),
    ]
}

/// The engine configuration a validation run executes: everything
/// swapped to host, running the schedule-driven executor on the paper's
/// optimized schedule — which is also what the spec models. Both the
/// `validate` and `obs` smokes therefore audit executor-mode steps.
pub fn validate_engine_config(model: GptConfig) -> EngineConfig {
    EngineConfig {
        model,
        seed: 42,
        adam: AdamParams::default(),
        act_decisions: vec![ActDecision::SwapToHost; model.layers],
        gpu_capacity: None,
        host_capacity: None,
        execution: ratel::engine::ExecutionOptions::default(),
        loss_scale: ScalePolicy::None,
        grad_clip: None,
        lr_schedule: LrSchedule::Constant,
        dropout: None,
        frozen_layers: Vec::new(),
    }
}

/// Builds the [`IterationSpec`] matching one engine step byte-for-byte.
///
/// Layer ids follow the engine: 0 = embedding, 1..=L = blocks, L+1 =
/// head. Per layer the spec plans exactly what the engine moves: a 2P
/// fp16 stage per touch (the head is staged once — `refetch_in_backward`
/// is false there), the block checkpoint plus saved activations to host,
/// a 2P gradient hand-off, and the 12P/14P optimizer state I/O.
pub fn engine_spec(engine: &RatelEngine, model: GptConfig, rates: LinkRates) -> IterationSpec {
    let rows = (model.batch * model.seq) as f64;
    let ckpt_bytes = 2.0 * rows * model.hidden as f64;
    let act_bytes = 2.0
        * BlockSaved::element_count_for(model.batch, model.seq, model.hidden, model.heads) as f64;
    let layer_count = engine.layer_count();
    let layers = (0..layer_count)
        .map(|id| {
            let params = engine.layer_param_count(id) as f64;
            let is_block = id >= 1 && id <= model.layers;
            let is_head = id == layer_count - 1;
            LayerTask {
                label: if id == 0 {
                    "embedding".into()
                } else if is_head {
                    "head".into()
                } else {
                    format!("block{}", id - 1)
                },
                p16_bytes: 2.0 * params,
                param_source: ParamSource::Ssd,
                // Placeholder compute; the caller rescales to calibrated
                // per-layer seconds via `rates.thp_gpu = 1.0`.
                fwd_flops: 0.0,
                bwd_flops: 0.0,
                act_to_host_bytes: if is_block {
                    ckpt_bytes + act_bytes
                } else {
                    0.0
                },
                act_to_ssd_bytes: 0.0,
                refetch_in_backward: !is_head,
                grad_bytes: 2.0 * params,
                grad_spill_to_ssd: false,
                optimizer: OptimizerKind::CpuOutOfCore {
                    read_bytes: 12.0 * params,
                    write_bytes: 14.0 * params,
                    cpu_params: params,
                },
            }
        })
        .collect();
    IterationSpec {
        layers,
        mode: GradOffloadMode::OptimizedActive,
        rates,
        gpus: 1,
        items_per_iteration: model.batch as f64,
        per_layer_overhead_seconds: 0.0,
    }
}

/// Per-route planned bytes of a spec, indexed like [`Route::ALL`].
///
/// Fp16 parameters stage SSD→host→GPU (one count on each hop, twice for
/// refetched layers); activations round-trip GPU→host→GPU (plus the SSD
/// spill when planned); gradients land GPU→host; optimizer state I/O is
/// SSD-only.
pub fn planned_route_bytes(spec: &IterationSpec) -> [u64; 4] {
    // Route::ALL order: GpuToHost, HostToGpu, HostToSsd, SsdToHost.
    spec.planned_route_bytes()
}

/// Calibrated compute rates from a warm-up step's telemetry: per-layer
/// compute *seconds* become the spec's "flops" with `thp_gpu = 1.0`, and
/// the CPU Adam rate is total updated params over optimizer CPU time.
fn calibrate(spec: &mut IterationSpec, warmup: &StepTelemetry) {
    let mut fwd = vec![0.0f64; spec.layers.len()];
    let mut bwd = vec![0.0f64; spec.layers.len()];
    let mut opt_cpu = 0.0f64;
    for s in &warmup.spans {
        let layer = s
            .label
            .rsplit_once('L')
            .and_then(|(_, n)| n.parse::<usize>().ok());
        if let Some(l) = layer.filter(|l| *l < spec.layers.len()) {
            if s.label.starts_with("fwd ") {
                fwd[l] += s.seconds();
            } else if s.label.starts_with("bwd ") {
                bwd[l] += s.seconds();
            } else if s.label.starts_with("opt-cpu ") {
                opt_cpu += s.seconds();
            }
        }
    }
    let total_params: f64 = spec
        .layers
        .iter()
        .map(|l| match l.optimizer {
            OptimizerKind::CpuOutOfCore { cpu_params, .. } => cpu_params,
            _ => 0.0,
        })
        .sum();
    spec.rates.thp_gpu = 1.0;
    if opt_cpu > 0.0 {
        spec.rates.cpu_params_per_sec = total_params / opt_cpu;
    }
    for (task, (f, b)) in spec.layers.iter_mut().zip(fwd.iter().zip(&bwd)) {
        task.fwd_flops = *f;
        // The measured backward span covers the whole layer turnaround
        // (checkpoint + activation fetches included), which the sim
        // schedules as separate transfer tasks — keep only a compute
        // floor so transfer time is not double-counted.
        task.bwd_flops = (b - f).max(*f);
    }
}

/// Runs the full validation: calibration step, measured steps, matching
/// simulation, and the cross-check report.
pub fn run(cfg: &ValidateConfig) -> Result<ValidateReport, String> {
    let model =
        validate_model(&cfg.model).ok_or_else(|| format!("unknown model {:?}", cfg.model))?;
    let server = crate::paper_server();
    let caps = route_caps(&server, cfg.throttle);
    let steps = cfg.steps.max(1);

    let mut engine =
        RatelEngine::new(validate_engine_config(model)).map_err(|e| format!("engine: {e}"))?;
    engine.enable_telemetry();
    let (tokens, targets) = random_batch(&model, 1234);

    // Warm-up step at full speed: calibrates compute rates and pays
    // one-time costs (thread spawning, allocator warm-up).
    engine
        .train_step(&tokens, &targets)
        .map_err(|e| format!("warm-up step: {e}"))?;
    let warmup = engine
        .last_step_telemetry()
        .expect("telemetry enabled")
        .clone();

    // Measured steps under the throttled links.
    for (route, cap) in caps {
        engine.set_route_throttle(route, Some(cap));
    }
    let mut measured_traffic: Option<TrafficSnapshot> = None;
    let mut wall = 0.0f64;
    let mut fwd_s = 0.0f64;
    let mut bwd_opt_s = 0.0f64;
    let mut overlap = 0.0f64;
    for step in 0..steps {
        let stats = engine
            .train_step(&tokens, &targets)
            .map_err(|e| format!("measured step: {e}"))?;
        if let Some(prev) = &measured_traffic {
            for route in Route::ALL {
                if prev.bytes(route) != stats.traffic.bytes(route) {
                    return Err(format!(
                        "step {step}: {route:?} moved {} bytes vs {} in step 0 — \
                         steps should be identical",
                        stats.traffic.bytes(route),
                        prev.bytes(route)
                    ));
                }
            }
        } else {
            measured_traffic = Some(stats.traffic);
        }
        let t = engine.last_step_telemetry().expect("telemetry enabled");
        wall += t.wall_seconds;
        // The measured forward stage is a *wall window* (step start to
        // the last forward span's end, transfers included), matching the
        // sim's stage-window semantics; backward+optimizer is the rest.
        let fwd_end = t
            .spans
            .iter()
            .filter(|s| s.category == SpanCategory::Forward)
            .map(|s| s.end)
            .fold(t.step_start, f64::max);
        let fwd_window = fwd_end - t.step_start;
        fwd_s += fwd_window;
        bwd_opt_s += t.wall_seconds - fwd_window;
        // Overlap with the same window semantics: the share of optimizer
        // span time inside the backward *stage window* (first to last
        // backward span). The executor's backward computes are thin
        // slivers paced by throttled transfers, so intersecting spans
        // with spans (`optimizer_overlap_ratio`) would measure
        // coincidence, not the §IV-C claim that the optimizer stage
        // hides inside backward.
        let bwd_window = t
            .spans
            .iter()
            .filter(|s| s.category == SpanCategory::Backward)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
                (lo.min(s.start), hi.max(s.end))
            });
        let opt: Vec<(f64, f64)> = t
            .spans
            .iter()
            .filter(|s| s.category == SpanCategory::Optimizer)
            .map(|s| (s.start, s.end))
            .collect();
        let opt_total: f64 = opt.iter().map(|(s, e)| e - s).sum();
        if opt_total > 0.0 && bwd_window.0.is_finite() {
            let hidden: f64 = opt
                .iter()
                .map(|(s, e)| (e.min(bwd_window.1) - s.max(bwd_window.0)).max(0.0))
                .sum();
            overlap += hidden / opt_total;
        }
    }
    let measured_traffic = measured_traffic.expect("at least one step");
    let telemetry = engine
        .last_step_telemetry()
        .expect("telemetry enabled")
        .clone();
    let n = steps as f64;

    // The matching spec: same bytes, throttled link rates, calibrated
    // compute.
    let rates = LinkRates {
        thp_gpu: 1.0,
        bw_g2m: caps[0].1,
        bw_m2g: caps[1].1,
        ssd_write: caps[2].1,
        ssd_read: caps[3].1,
        cpu_params_per_sec: 1.0,
        state_io_efficiency: 1.0,
    };
    let mut spec = engine_spec(&engine, model, rates);
    calibrate(&mut spec, &warmup);
    let planned = planned_route_bytes(&spec);
    let (graph, _, _) = spec.build();
    let sim = simulate(&graph);

    let sim_fwd = sim.stage(Stage::Forward).duration();
    let stages = vec![
        StageDelta {
            name: "forward",
            predicted: sim_fwd,
            measured: fwd_s / n,
        },
        StageDelta {
            name: "backward+optimizer",
            predicted: (sim.makespan - sim_fwd).max(0.0),
            measured: bwd_opt_s / n,
        },
        StageDelta {
            name: "step",
            predicted: sim.makespan,
            measured: wall / n,
        },
    ];

    let bandwidth = Route::ALL
        .iter()
        .map(|&route| {
            let cap = caps
                .iter()
                .find(|(r, _)| *r == route)
                .map(|(_, c)| *c)
                .expect("all routes capped");
            (
                route,
                telemetry.route_metrics[route.index()].achieved_bandwidth(),
                cap,
            )
        })
        .collect();

    let mut sim_timeline = Timeline::from_sim(&sim);
    sim_timeline.name = "simulated".into();
    let measured_timeline = telemetry.timeline("measured");

    Ok(ValidateReport {
        planned_bytes: planned,
        measured_bytes: Route::ALL.map(|r| measured_traffic.bytes(r)),
        stages,
        overlap_ratio: overlap / n,
        bandwidth,
        sim_timeline,
        measured_timeline,
        sim,
        telemetry,
    })
}

fn human_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

/// Renders the validation report as aligned text.
pub fn render(cfg: &ValidateConfig, report: &ValidateReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "sim-vs-real validation: model={} steps={} throttle={:.0e}\n\n",
        cfg.model, cfg.steps, cfg.throttle
    ));
    out.push_str("per-route bytes (planned == measured required):\n");
    for (i, route) in Route::ALL.iter().enumerate() {
        let ok = if report.planned_bytes[i] == report.measured_bytes[i] {
            "ok"
        } else {
            "MISMATCH"
        };
        out.push_str(&format!(
            "  {:<10} planned {:>12} measured {:>12}  {}\n",
            route.name(),
            report.planned_bytes[i],
            report.measured_bytes[i],
            ok
        ));
    }
    out.push_str("\nper-stage wall time (predicted vs measured):\n");
    for s in &report.stages {
        let verdict = if s.relative_error() <= cfg.tolerance {
            "ok"
        } else {
            "MISMATCH"
        };
        out.push_str(&format!(
            "  {:<20} predicted {:>8.3}s measured {:>8.3}s  ({:>5.1}% off, {})\n",
            s.name,
            s.predicted,
            s.measured,
            100.0 * s.relative_error(),
            verdict
        ));
    }
    out.push_str(&format!(
        "\noptimizer overlap ratio: {:.2} (share of optimizer time hidden under backward)\n",
        report.overlap_ratio
    ));
    out.push_str("\nachieved vs throttled bandwidth:\n");
    for (route, achieved, cap) in &report.bandwidth {
        match achieved {
            Some(a) => out.push_str(&format!(
                "  {:<10} {:>12}/s of {:>12}/s cap ({:.0}%)\n",
                route.name(),
                human_bytes(*a),
                human_bytes(*cap),
                100.0 * a / cap
            )),
            None => out.push_str(&format!("  {:<10} idle\n", route.name())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_bytes_match_the_closed_form() {
        let model = GptConfig::tiny();
        let engine = RatelEngine::new(validate_engine_config(model)).unwrap();
        let rates = LinkRates {
            thp_gpu: 1.0,
            bw_g2m: 1.0,
            bw_m2g: 1.0,
            ssd_read: 1.0,
            ssd_write: 1.0,
            cpu_params_per_sec: 1.0,
            state_io_efficiency: 1.0,
        };
        let spec = engine_spec(&engine, model, rates);
        let planned = planned_route_bytes(&spec);
        let params = engine.total_params() as u64;
        let head = engine.layer_param_count(engine.layer_count() - 1) as u64;
        let rows = (model.batch * model.seq) as u64;
        let ckpt = 2 * rows * model.hidden as u64;
        let acts =
            2 * BlockSaved::element_count_for(model.batch, model.seq, model.hidden, model.heads)
                as u64;
        let l = model.layers as u64;
        // Route::ALL order: GpuToHost, HostToGpu, HostToSsd, SsdToHost.
        assert_eq!(planned[0], l * (ckpt + acts) + 2 * params);
        assert_eq!(planned[1], 2 * (2 * params - head) + l * (ckpt + acts));
        assert_eq!(planned[2], 14 * params);
        assert_eq!(planned[3], 12 * params + 2 * (2 * params - head));
    }

    #[test]
    fn unknown_model_is_rejected() {
        let cfg = ValidateConfig {
            model: "100B".into(),
            ..ValidateConfig::default()
        };
        assert!(run(&cfg).is_err());
        assert!(validate_model("small").is_some());
    }
}
