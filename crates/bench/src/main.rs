//! `repro` / `ratel-bench`: regenerates the Ratel paper's tables and
//! figures, and exports simulator timelines.
//!
//! Usage: `repro <figure-id>... | all | list | trace [options]`. Figure
//! output goes to stdout and, as CSV, to `./results/`; `trace` prints an
//! ASCII timeline with utilization/bubble analysis and can write Chrome
//! trace-event JSON (`--out trace.json`) for `chrome://tracing`/Perfetto.

use std::path::Path;

use ratel_bench::figs;
use ratel_bench::figs::trace::{parse_mode, render_report, TraceConfig};

const TRACE_USAGE: &str = "usage: ratel-bench trace [--model 13B] [--batch 32] \
[--mode optimized|naive|separate] [--gpus 1] [--iters 1] [--width 100] [--out trace.json]";

const VALIDATE_USAGE: &str = "usage: ratel-bench validate [--model tiny|small] [--steps 1] \
[--throttle 1e-4] [--tolerance 0.5] [--out validate.json]";

const FAULTS_USAGE: &str = "usage: ratel-bench faults [--model tiny|small] [--steps 10] \
[--faults 5] [--seed 7]";

const VERIFY_PLANS_USAGE: &str = "usage: ratel-bench verify-plans [--model 13B] [--iters 2] \
[--out verify.json]";

const BENCH_USAGE: &str = "usage: ratel-bench bench [--smoke] [--write] [--check] [--dir .] \
[--suite attention|kernels|adam|ssd|executor]";

const OBS_USAGE: &str = "usage: ratel-bench obs [--model tiny|small] [--steps 5] \
[--throttle 1e-4] [--metrics-out metrics.prom] [--jsonl-out metrics.jsonl] [--trace-out trace.json]";

fn obs_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = ratel_bench::obs::ObsConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "help" {
            return Err(OBS_USAGE.to_string());
        }
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{OBS_USAGE}"))?;
        match flag {
            "--model" => {
                if ratel_bench::validate::validate_model(v).is_none() {
                    return Err(format!("unknown model {v:?} (tiny|small)"));
                }
                cfg.model = v.clone();
            }
            "--steps" => {
                cfg.steps = v
                    .parse::<usize>()
                    .map_err(|_| format!("--steps expects a positive integer, got {v:?}"))?
                    .max(1)
            }
            "--throttle" => {
                cfg.throttle =
                    Some(v.parse::<f64>().ok().filter(|t| *t > 0.0).ok_or_else(|| {
                        format!("--throttle expects a positive number, got {v:?}")
                    })?)
            }
            "--metrics-out" => cfg.metrics_out = Some(v.clone()),
            "--jsonl-out" => cfg.jsonl_out = Some(v.clone()),
            "--trace-out" => cfg.trace_out = Some(v.clone()),
            _ => return Err(format!("unknown flag {flag:?}\n{OBS_USAGE}")),
        }
        i += 2;
    }
    let report = ratel_bench::obs::run(&cfg)?;
    print!("{}", ratel_bench::obs::render(&cfg, &report));
    for (name, path) in [
        ("metrics", &cfg.metrics_out),
        ("jsonl", &cfg.jsonl_out),
        ("trace", &cfg.trace_out),
    ] {
        if let Some(path) = path {
            println!("wrote {name} to {path}");
        }
    }
    let failures = report.failures();
    if !failures.is_empty() {
        return Err(format!(
            "plan-conformance drift:\n  {}",
            failures.join("\n  ")
        ));
    }
    Ok(())
}

fn bench_cmd(args: &[String]) -> Result<(), String> {
    let mut smoke = false;
    let mut write = false;
    let mut check = false;
    let mut dir = String::from(".");
    let mut suites: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "help" => return Err(BENCH_USAGE.to_string()),
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--write" => {
                write = true;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--dir" => {
                dir = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--dir needs a value\n{BENCH_USAGE}"))?
                    .clone();
                i += 2;
            }
            "--suite" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--suite needs a value\n{BENCH_USAGE}"))?;
                if !ratel_bench::perf::SUITES.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown suite {v:?} ({})",
                        ratel_bench::perf::SUITES.join("|")
                    ));
                }
                suites.push(v.clone());
                i += 2;
            }
            flag => return Err(format!("unknown flag {flag:?}\n{BENCH_USAGE}")),
        }
    }
    if suites.is_empty() {
        suites = ratel_bench::perf::SUITES
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let mut failures = Vec::new();
    for suite in &suites {
        let result = ratel_bench::perf::run_suite(suite, smoke)?;
        print!("{}", ratel_bench::perf::render(&result));
        let path = Path::new(&dir).join(format!("BENCH_{suite}.json"));
        if check {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("could not read baseline {}: {e}", path.display()))?;
            let baseline = ratel_bench::perf::parse_suite(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            if baseline.suite != *suite {
                return Err(format!(
                    "{}: holds suite {:?}, expected {:?}",
                    path.display(),
                    baseline.suite,
                    suite
                ));
            }
            let mut suite_failures = ratel_bench::perf::check_regressions(&result, &baseline);
            if !suite_failures.is_empty() {
                // A regression must reproduce on a second independent
                // run of the suite to fail the gate; a one-off stall on
                // a shared box is noise, a real code regression repeats.
                println!("suite {suite}: possible regression, re-running to confirm");
                let retry = ratel_bench::perf::run_suite(suite, smoke)?;
                print!("{}", ratel_bench::perf::render(&retry));
                let confirmed = ratel_bench::perf::check_regressions(&retry, &baseline);
                suite_failures.retain(|f| {
                    let name = f.split(':').next().unwrap_or("");
                    confirmed.iter().any(|c| c.starts_with(name))
                });
            }
            failures.extend(suite_failures);
        }
        if write {
            std::fs::write(&path, ratel_bench::perf::to_json(&result))
                .map_err(|e| format!("could not write {}: {e}", path.display()))?;
            println!("wrote {}", path.display());
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "perf regression vs committed baseline:\n  {}",
            failures.join("\n  ")
        ));
    }
    if check {
        println!(
            "perf check ok: no regression beyond {:.0}%",
            ratel_bench::perf::REGRESSION_THRESHOLD * 100.0
        );
    }
    Ok(())
}

fn verify_plans_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = ratel_bench::verify_plans::VerifyPlansConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "help" {
            return Err(VERIFY_PLANS_USAGE.to_string());
        }
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{VERIFY_PLANS_USAGE}"))?;
        match flag {
            "--model" => cfg.model = Some(v.clone()),
            "--iters" => {
                cfg.iterations = v
                    .parse::<usize>()
                    .map_err(|_| format!("--iters expects a positive integer, got {v:?}"))?
                    .max(1)
            }
            "--out" => cfg.out = Some(v.clone()),
            _ => return Err(format!("unknown flag {flag:?}\n{VERIFY_PLANS_USAGE}")),
        }
        i += 2;
    }
    let report = ratel_bench::verify_plans::run(&cfg)?;
    print!("{}", ratel_bench::verify_plans::render(&cfg, &report));
    if let Some(path) = &cfg.out {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("could not write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if report.violations() > 0 {
        return Err(format!(
            "static verification failed: {} violation(s)",
            report.violations()
        ));
    }
    Ok(())
}

fn faults_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = ratel_bench::faults::FaultsConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "help" {
            return Err(FAULTS_USAGE.to_string());
        }
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{FAULTS_USAGE}"))?;
        match flag {
            "--model" => {
                if ratel_bench::faults::faults_model(v).is_none() {
                    return Err(format!("unknown model {v:?} (tiny|small)"));
                }
                cfg.model = v.clone();
            }
            "--steps" => {
                cfg.steps = v
                    .parse::<usize>()
                    .map_err(|_| format!("--steps expects a positive integer, got {v:?}"))?
                    .max(1)
            }
            "--faults" => {
                cfg.faults = v
                    .parse::<usize>()
                    .map_err(|_| format!("--faults expects a non-negative integer, got {v:?}"))?
            }
            "--seed" => {
                cfg.seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?
            }
            _ => return Err(format!("unknown flag {flag:?}\n{FAULTS_USAGE}")),
        }
        i += 2;
    }
    let report = ratel_bench::faults::run(&cfg)?;
    print!("{}", ratel_bench::faults::render(&cfg, &report));
    let failures = report.failures(&cfg);
    if !failures.is_empty() {
        return Err(format!("chaos smoke failed:\n  {}", failures.join("\n  ")));
    }
    Ok(())
}

fn validate_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = ratel_bench::validate::ValidateConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "help" {
            return Err(VALIDATE_USAGE.to_string());
        }
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{VALIDATE_USAGE}"))?;
        match flag {
            "--model" => {
                if ratel_bench::validate::validate_model(v).is_none() {
                    return Err(format!("unknown model {v:?} (tiny|small)"));
                }
                cfg.model = v.clone();
            }
            "--steps" => {
                cfg.steps = v
                    .parse::<usize>()
                    .map_err(|_| format!("--steps expects a positive integer, got {v:?}"))?
                    .max(1)
            }
            "--throttle" => {
                cfg.throttle = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| *t > 0.0)
                    .ok_or_else(|| format!("--throttle expects a positive number, got {v:?}"))?
            }
            "--tolerance" => {
                cfg.tolerance =
                    v.parse::<f64>().ok().filter(|t| *t > 0.0).ok_or_else(|| {
                        format!("--tolerance expects a positive number, got {v:?}")
                    })?
            }
            "--out" => cfg.out = Some(v.clone()),
            _ => return Err(format!("unknown flag {flag:?}\n{VALIDATE_USAGE}")),
        }
        i += 2;
    }
    let report = ratel_bench::validate::run(&cfg)?;
    print!("{}", ratel_bench::validate::render(&cfg, &report));
    if let Some(path) = &cfg.out {
        let json = ratel_sim::chrome_trace_json_timelines(&[
            report.sim_timeline.clone(),
            report.measured_timeline.clone(),
        ]);
        std::fs::write(path, json).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("wrote {path} — load it in chrome://tracing or https://ui.perfetto.dev");
    }
    // Fail the command (after the report and trace are out, so they can
    // be inspected) if bytes drifted or a stage blew the tolerance.
    let failures = report.failures(cfg.tolerance);
    if !failures.is_empty() {
        return Err(format!("validation failed:\n  {}", failures.join("\n  ")));
    }
    Ok(())
}

fn trace_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = TraceConfig::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    let parse = |flag: &str, v: &str| -> Result<usize, String> {
        v.parse::<usize>()
            .map_err(|_| format!("{flag} expects a positive integer, got {v:?}"))
    };
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "help" {
            return Err(TRACE_USAGE.to_string());
        }
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{TRACE_USAGE}"))?;
        match flag {
            "--model" => {
                let ladder = ratel_model::zoo::llm_ladder();
                if !ladder.iter().any(|m| m.name == *v) {
                    let names: Vec<&str> = ladder.iter().map(|m| m.name.as_str()).collect();
                    return Err(format!("unknown model {v:?} ({})", names.join("|")));
                }
                cfg.model = v.clone();
            }
            "--batch" => cfg.batch = parse(flag, v)?,
            "--mode" => {
                cfg.mode = parse_mode(v)
                    .ok_or_else(|| format!("unknown mode {v:?} (optimized|naive|separate)"))?
            }
            "--gpus" => cfg.gpus = parse(flag, v)?.max(1),
            "--iters" => cfg.iterations = parse(flag, v)?.max(1),
            "--width" => cfg.width = parse(flag, v)?,
            "--out" => out = Some(v.clone()),
            _ => return Err(format!("unknown flag {flag:?}\n{TRACE_USAGE}")),
        }
        i += 2;
    }
    let report = figs::trace::report(&cfg);
    print!("{}", render_report(&cfg, &report));
    if let Some(path) = out {
        let json = ratel_sim::chrome_trace_json(&report);
        std::fs::write(&path, json).map_err(|e| format!("could not write {path}: {e}"))?;
        println!("wrote {path} — load it in chrome://tracing or https://ui.perfetto.dev");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!(
            "usage: repro <figure-id>... | all | list | trace [options] | validate [options] \
             | faults [options] | verify-plans [options] | bench [options] | obs [options]"
        );
        eprintln!("figure ids: {}", figs::ALL.join(" "));
        eprintln!("{TRACE_USAGE}");
        eprintln!("{VALIDATE_USAGE}");
        eprintln!("{FAULTS_USAGE}");
        eprintln!("{VERIFY_PLANS_USAGE}");
        eprintln!("{BENCH_USAGE}");
        eprintln!("{OBS_USAGE}");
        std::process::exit(2);
    }
    if args[0] == "obs" {
        if let Err(e) = obs_cmd(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }
    if args[0] == "bench" {
        if let Err(e) = bench_cmd(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }
    if args[0] == "verify-plans" {
        if let Err(e) = verify_plans_cmd(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }
    if args[0] == "validate" {
        if let Err(e) = validate_cmd(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }
    if args[0] == "faults" {
        if let Err(e) = faults_cmd(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }
    if args[0] == "trace" {
        if args.len() == 1 {
            // Bare `trace`: the default all-modes ASCII overview.
            print!("{}", figs::trace::run());
            return;
        }
        if let Err(e) = trace_cmd(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }
    if args[0] == "list" {
        for id in figs::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        figs::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let out_dir = Path::new("results");
    for id in ids {
        match figs::run(id) {
            Some(tables) => {
                for (i, t) in tables.iter().enumerate() {
                    println!("{}", t.render());
                    let name = if tables.len() == 1 {
                        id.to_string()
                    } else {
                        format!("{id}_{i}")
                    };
                    if let Err(e) = t.write_csv(out_dir, &name) {
                        eprintln!("warning: could not write {name}.csv: {e}");
                    }
                }
            }
            None => {
                eprintln!("unknown figure id {id:?}; try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
