//! `repro`: regenerates the Ratel paper's tables and figures.
//!
//! Usage: `repro <figure-id>... | all | list`. Output goes to stdout and,
//! as CSV, to `./results/`.

use std::path::Path;

use ratel_bench::figs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <figure-id>... | all | list");
        eprintln!("figure ids: {}", figs::ALL.join(" "));
        std::process::exit(2);
    }
    if args[0] == "trace" {
        print!("{}", ratel_bench::figs::trace::run());
        return;
    }
    if args[0] == "list" {
        for id in figs::ALL {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        figs::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let out_dir = Path::new("results");
    for id in ids {
        match figs::run(id) {
            Some(tables) => {
                for (i, t) in tables.iter().enumerate() {
                    println!("{}", t.render());
                    let name = if tables.len() == 1 {
                        id.to_string()
                    } else {
                        format!("{id}_{i}")
                    };
                    if let Err(e) = t.write_csv(out_dir, &name) {
                        eprintln!("warning: could not write {name}.csv: {e}");
                    }
                }
            }
            None => {
                eprintln!("unknown figure id {id:?}; try `repro list`");
                std::process::exit(2);
            }
        }
    }
}
