//! Figure 6: maximum trainable model size of all five systems vs main
//! memory capacity, on 24 GB GPUs (6a: 4090/3090) and the 16 GB 4080
//! (6b).

use ratel_baselines::System;
use ratel_hw::units::GIB;
use ratel_hw::GpuSpec;
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

/// Regenerates Fig. 6a (`rtx4080 = false`) or 6b (`true`).
pub fn run(rtx4080: bool) -> Table {
    let ladder = zoo::llm_ladder();
    let (title, gpu) = if rtx4080 {
        (
            "Fig 6b: max trainable size (B) vs main memory, RTX 4080",
            GpuSpec::rtx4080(),
        )
    } else {
        (
            "Fig 6a: max trainable size (B) vs main memory, RTX 4090/3090",
            GpuSpec::rtx4090(),
        )
    };
    let mut t = Table::new(
        title,
        &[
            "main memory (GiB)",
            "FlashNeuron",
            "Colossal-AI",
            "ZeRO-Infinity",
            "ZeRO-Offload",
            "Ratel",
        ],
    );
    for gib in [128u64, 256, 384, 512, 640, 768] {
        let server = paper_server()
            .with_gpu(gpu.clone())
            .with_main_memory(gib * GIB);
        let mut row = vec![gib.to_string()];
        for sys in [
            System::FlashNeuron,
            System::ColossalAi,
            System::ZeroInfinity,
            System::ZeroOffload,
            System::Ratel,
        ] {
            row.push(fnum(sys.max_trainable_billions(&server, &ladder, 1), 1));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratel_reaches_276b_class_at_768g_on_4090() {
        let t = run(false);
        let last = t.rows.last().unwrap();
        let ratel: f64 = last[5].parse().unwrap();
        assert!((270.0..290.0).contains(&ratel), "{ratel}");
    }

    #[test]
    fn ratel_reaches_175b_class_on_4080_with_256g() {
        let t = run(true);
        let row = &t.rows[1]; // 256 GiB
        assert_eq!(row[0], "256");
        let ratel: f64 = row[5].parse().unwrap();
        assert!((170.0..180.0).contains(&ratel), "{ratel}");
    }

    #[test]
    fn ratel_dominates_all_columns() {
        for table in [run(false), run(true)] {
            for row in &table.rows {
                let ratel: f64 = row[5].parse().unwrap();
                for cell in &row[1..5] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(ratel >= v, "{row:?}");
                }
            }
        }
    }
}
