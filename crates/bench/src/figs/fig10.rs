//! Figure 10: effect of the number of SSDs — Ratel vs ZeRO-Infinity on
//! the 135B model (10a) and Ratel's TFLOPS on 13B at several batch sizes
//! (10b).

use ratel_baselines::System;
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

const SSD_COUNTS: [usize; 5] = [1, 2, 3, 6, 12];

/// Fig. 10a: max throughput fine-tuning 135B vs number of SSDs.
pub fn run_a() -> Table {
    let model = zoo::llm("135B");
    let batches = [8usize, 16, 32, 48];
    let mut t = Table::new(
        "Fig 10a: throughput (token/s), 135B vs number of SSDs (best batch)",
        &["SSDs", "ZeRO-Infinity", "Ratel"],
    );
    for n in SSD_COUNTS {
        let server = paper_server().with_ssd_count(n);
        let mut row = vec![n.to_string()];
        for sys in [System::ZeroInfinity, System::Ratel] {
            row.push(
                sys.best_over_batches(&server, &model, &batches)
                    .map(|(_, r)| fnum(r.throughput_items_per_sec, 1))
                    .unwrap_or_else(|| "OOM".into()),
            );
        }
        t.row(row);
    }
    t
}

/// Fig. 10b: Ratel's achieved TFLOPS on 13B vs number of SSDs.
pub fn run_b() -> Table {
    let model = zoo::llm("13B");
    let mut t = Table::new(
        "Fig 10b: Ratel TFLOPS, 13B vs number of SSDs",
        &["SSDs", "bsz=32", "bsz=48", "bsz=64"],
    );
    for n in SSD_COUNTS {
        let server = paper_server().with_ssd_count(n);
        let mut row = vec![n.to_string()];
        for b in [32usize, 48, 64] {
            row.push(
                System::Ratel
                    .simulate(&server, &model, b)
                    .map(|r| fnum(r.tflops, 0))
                    .unwrap_or_else(|| "OOM".into()),
            );
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10a_ratel_scales_then_flattens() {
        let t = run_a();
        let ratel: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Near-linear 1 -> 3.
        assert!(ratel[2] / ratel[0] > 2.0, "{ratel:?}");
        // Sub-linear 6 -> 12.
        assert!(ratel[4] / ratel[3] < 1.7, "{ratel:?}");
        // Monotone.
        for w in ratel.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn fig10a_ratel_beats_zero_infinity_at_every_count() {
        let t = run_a();
        for row in &t.rows {
            let zero: f64 = row[1].parse().unwrap();
            let ratel: f64 = row[2].parse().unwrap();
            assert!(ratel > zero, "{row:?}");
        }
    }

    #[test]
    fn fig10b_larger_batches_need_fewer_ssds_to_saturate() {
        let t = run_b();
        // At 3 SSDs, batch 64 achieves a higher fraction of its final
        // (12-SSD) TFLOPS than batch 32 does.
        let col =
            |idx: usize| -> Vec<f64> { t.rows.iter().map(|r| r[idx].parse().unwrap()).collect() };
        let b32 = col(1);
        let b64 = col(3);
        let frac32 = b32[2] / b32[4];
        let frac64 = b64[2] / b64[4];
        assert!(frac64 > frac32, "b32 {frac32:.2} vs b64 {frac64:.2}");
    }
}
