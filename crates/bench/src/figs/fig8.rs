//! Figure 8: benefit of swapping activations to the SSDs — maximum
//! trainable size of Ratel vs the host-only Ratel+CpuAct ablation at
//! different batch sizes, with 128 GB and 256 GB of main memory.

use ratel::profile::HardwareProfile;
use ratel::RatelMemoryModel;
use ratel_hw::units::GIB;
use ratel_hw::ServerConfig;
use ratel_model::{zoo, ModelConfig, ModelProfile};

use crate::paper_server;
use crate::table::{fnum, Table};

/// Whether the host-only variant (activations may only live in main
/// memory) can run `model` at `batch`: Ratel's own requirements plus all
/// *swapped* activations — at minimum the checkpoints — resident in host.
fn cpu_act_feasible(server: &ServerConfig, model: &ModelConfig, batch: usize) -> bool {
    let profile = ModelProfile::new(model, batch);
    if RatelMemoryModel::default().check(server, &profile).is_err() {
        return false;
    }
    let hw = HardwareProfile::measure(server, &profile, batch);
    profile.inter_act_bytes() <= hw.mem_avail
}

fn ratel_feasible(server: &ServerConfig, model: &ModelConfig, batch: usize) -> bool {
    RatelMemoryModel::default()
        .check(server, &ModelProfile::new(model, batch))
        .is_ok()
}

fn max_size(server: &ServerConfig, batch: usize, host_only: bool) -> f64 {
    zoo::llm_ladder()
        .iter()
        .filter(|m| {
            if host_only {
                cpu_act_feasible(server, m, batch)
            } else {
                ratel_feasible(server, m, batch)
            }
        })
        .map(|m| m.size_billions())
        .fold(0.0, f64::max)
}

fn table(gib: u64) -> Table {
    let server = paper_server().with_main_memory(gib * GIB);
    let mut t = Table::new(
        format!("Fig 8: max trainable size (B) vs batch, {gib} GB main memory"),
        &["batch", "Ratel+CpuAct", "Ratel Optimized"],
    );
    for b in [12usize, 24, 36, 60] {
        t.row(vec![
            b.to_string(),
            fnum(max_size(&server, b, true), 1),
            fnum(max_size(&server, b, false), 1),
        ]);
    }
    t
}

/// Regenerates Fig. 8a (128 GB) and 8b (256 GB).
pub fn run() -> Vec<Table> {
    vec![table(128), table(256)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_swapping_multiplies_max_size_at_128g() {
        // §V-E: "2x~5x larger model than Ratel+CpuAct with 128 GB".
        let t = &run()[0];
        for row in &t.rows {
            let cpu: f64 = row[1].parse().unwrap();
            let ratel: f64 = row[2].parse().unwrap();
            assert!(ratel >= cpu, "{row:?}");
        }
        let any_big_gap = t.rows.iter().any(|row| {
            let cpu: f64 = row[1].parse().unwrap();
            let ratel: f64 = row[2].parse().unwrap();
            cpu > 0.0 && ratel / cpu >= 2.0
        });
        assert!(any_big_gap, "{:?}", t.rows);
    }

    #[test]
    fn gap_closes_at_256g_large_batch() {
        // §V-E: with 256 GB and batch 60 the two match (GPU-bound).
        let t = &run()[1];
        let last = t.rows.last().unwrap();
        assert_eq!(last[1], last[2], "{last:?}");
    }

    #[test]
    fn max_size_declines_with_batch() {
        let t = &run()[1];
        let first: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(first >= last);
    }
}
