//! One module per reproduced figure/table.

pub mod extensions;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sensitivity;
pub mod summary;
pub mod tables;
pub mod trace;

use ratel::report::IterationReport;
use ratel_sim::{ResourceId, Stage};

use crate::table::Table;

/// All figure ids in order, for `repro all`.
pub const ALL: &[&str] = &[
    "fig1",
    "fig2a",
    "fig2b",
    "fig2c",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8",
    "fig9a",
    "fig9b",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13",
    "tables",
    "summary",
    "sensitivity",
    "ext-seqlen",
    "ext-pcie",
    "ext-lora",
];

/// Runs one figure by id; returns its tables.
pub fn run(id: &str) -> Option<Vec<Table>> {
    Some(match id {
        "fig1" => fig1::run(),
        "fig2a" => vec![fig2::run_a()],
        "fig2b" => vec![fig2::run_b()],
        "fig2c" => vec![fig2::run_c()],
        "fig5a" => vec![fig5::run_a()],
        "fig5b" => vec![fig5::run_b()],
        "fig5c" => vec![fig5::run_c()],
        "fig6a" => vec![fig6::run(false)],
        "fig6b" => vec![fig6::run(true)],
        "fig7" => fig7::run(),
        "fig8" => fig8::run(),
        "fig9a" => fig9::run_a(),
        "fig9b" => vec![fig9::run_b()],
        "fig10a" => vec![fig10::run_a()],
        "fig10b" => vec![fig10::run_b()],
        "fig11" => fig11::run(),
        "fig12" => vec![fig12::run()],
        "fig13" => vec![fig13::run()],
        "tables" => tables::run(),
        "summary" => vec![summary::run()],
        "sensitivity" => vec![sensitivity::run()],
        "ext-seqlen" => vec![extensions::run_seqlen()],
        "ext-pcie" => vec![extensions::run_pcie()],
        "ext-lora" => vec![extensions::run_lora()],
        _ => return None,
    })
}

/// Looks up a simulator resource id by name in a report.
pub(crate) fn resource(report: &IterationReport, name: &str) -> Option<ResourceId> {
    report
        .sim
        .resources
        .iter()
        .position(|r| r.name == name)
        .map(ResourceId)
}

/// Stage utilization (%) of a named resource, or 0 when absent.
pub(crate) fn util_pct(report: &IterationReport, name: &str, stage: Stage) -> f64 {
    resource(report, name)
        .map(|r| report.sim.stage_utilization(r, stage) * 100.0)
        .unwrap_or(0.0)
}
