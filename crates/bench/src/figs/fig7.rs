//! Figure 7: effect of active gradient offloading — Ratel+ZeRO (separate
//! stage) vs naive vs optimized, fine-tuning 13B and 175B on the 4090.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_model::{zoo, ModelProfile};

use crate::paper_server;
use crate::table::{fnum, Table};

/// Throughput of one mode at one batch.
pub fn throughput(model_name: &str, batch: usize, mode: GradOffloadMode) -> f64 {
    let server = paper_server();
    let model = ModelProfile::new(&zoo::llm(model_name), batch);
    let profile = HardwareProfile::measure(&server, &model, batch);
    let plan = ActivationPlanner::new(&profile, &model).plan();
    RatelSchedule {
        profile: &profile,
        model: &model,
        plan: &plan,
        mode,
        gpus: 1,
    }
    .simulate()
    .throughput_items_per_sec
}

fn table(title: &str, model: &str, batches: &[usize]) -> Table {
    let mut t = Table::new(
        title,
        &["batch", "Ratel+ZeRO", "Ratel Naive", "Ratel Optimized"],
    );
    for &b in batches {
        t.row(vec![
            b.to_string(),
            fnum(throughput(model, b, GradOffloadMode::SeparateStage), 0),
            fnum(throughput(model, b, GradOffloadMode::NaiveActive), 0),
            fnum(throughput(model, b, GradOffloadMode::OptimizedActive), 0),
        ]);
    }
    t
}

/// Regenerates Fig. 7a (13B) and 7b (175B).
pub fn run() -> Vec<Table> {
    vec![
        table(
            "Fig 7a: active gradient offloading, 13B on RTX 4090 (token/s)",
            "13B",
            &[8, 16, 32, 64],
        ),
        table(
            "Fig 7b: active gradient offloading, 175B on RTX 4090 (token/s)",
            "175B",
            &[8, 16],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_wins_everywhere() {
        for t in run() {
            for row in &t.rows {
                let zero: f64 = row[1].parse().unwrap();
                let naive: f64 = row[2].parse().unwrap();
                let opt: f64 = row[3].parse().unwrap();
                assert!(opt >= naive && opt > zero, "{}: {row:?}", t.title);
            }
        }
    }

    #[test]
    fn gain_is_larger_at_batch_64_than_batch_8() {
        let t = &run()[0];
        let gain = |row: &Vec<String>| -> f64 {
            row[3].parse::<f64>().unwrap() / row[1].parse::<f64>().unwrap()
        };
        let g8 = gain(&t.rows[0]);
        let g32 = gain(&t.rows[2]);
        assert!(g32 > g8, "g8 {g8:.2} g32 {g32:.2}");
    }
}
