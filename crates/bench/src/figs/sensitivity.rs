//! `repro sensitivity`: robustness of the headline result to the
//! calibration constants.
//!
//! The reproduction's absolute numbers hinge on a few constants measured
//! on hardware we do not have (CPU Adam rate, optimizer-state SSD
//! efficiency, the DeepSpeed staging-stall rate). This sweep perturbs
//! each and reports the Ratel-vs-ZeRO-Infinity peak-throughput ratio on
//! the 13B model: the *conclusion* (Ratel wins by 2-4x) should hold
//! across the plausible range even though individual stage times move.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_baselines::System;
use ratel_model::{zoo, ModelProfile};

use crate::paper_server;
use crate::table::{fnum, Table};

/// Ratel throughput at one batch with overridden constants.
fn ratel_at(batch: usize, cpu_rate: f64, state_eff: f64) -> f64 {
    let server = paper_server();
    let model = ModelProfile::new(&zoo::llm("13B"), batch);
    let mut hw = HardwareProfile::measure(&server, &model, batch);
    hw.cpu_adam_params_per_sec = cpu_rate;
    hw.state_io_efficiency = state_eff;
    let plan = ActivationPlanner::new(&hw, &model).plan();
    RatelSchedule {
        profile: &hw,
        model: &model,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    }
    .simulate()
    .throughput_items_per_sec
}

/// Peak Ratel throughput over the batch sweep with overridden constants.
fn ratel_peak(cpu_rate: f64, state_eff: f64) -> f64 {
    [8usize, 16, 32, 64, 128]
        .iter()
        .map(|&b| ratel_at(b, cpu_rate, state_eff))
        .fold(0.0, f64::max)
}

/// The sensitivity sweep table.
pub fn run() -> Table {
    let server = paper_server();
    let model = zoo::llm("13B");
    let batches = [8usize, 16, 32, 64, 128];
    let zero_peak = System::ZeroInfinity
        .best_over_batches(&server, &model, &batches)
        .map(|(_, r)| r.throughput_items_per_sec)
        .unwrap_or(1.0);

    let mut t = Table::new(
        "Sensitivity: Ratel throughput (13B) vs calibration constants",
        &[
            "cpu adam (params/s)",
            "state-IO eff",
            "tok/s @b32",
            "peak tok/s",
            "peak vs ZeRO-Inf (fixed)",
        ],
    );
    for cpu in [0.3e9, 0.55e9, 1.1e9] {
        for eff in [0.5, 0.7, 1.0] {
            let at32 = ratel_at(32, cpu, eff);
            let peak = ratel_peak(cpu, eff);
            t.row(vec![
                format!("{:.2}e9", cpu / 1e9),
                fnum(eff, 1),
                fnum(at32, 0),
                fnum(peak, 0),
                fnum(peak / zero_peak, 2),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratel_wins_across_the_whole_calibration_range() {
        let t = run();
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(
                ratio > 1.5,
                "conclusion not robust at {row:?} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn faster_cpu_and_ssd_help_ratel() {
        let t = run();
        let first: f64 = t.rows.first().unwrap()[2].parse().unwrap(); // slowest corner
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap(); // fastest corner
        assert!(
            last > first,
            "batch-32 throughput must react to constants: {first} vs {last}"
        );
    }
}
