//! `repro summary`: the paper's headline claims computed end-to-end —
//! the one-screen paper-vs-measured digest EXPERIMENTS.md is built from.

use ratel::cost::CostPoint;
use ratel_baselines::{megatron, System};
use ratel_hw::units::GIB;
use ratel_hw::GpuSpec;
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

/// Computes the headline metrics.
pub fn run() -> Table {
    let mut t = Table::new(
        "Headline claims: paper vs this reproduction",
        &["claim", "paper", "measured"],
    );
    let ladder = zoo::llm_ladder();

    // Claim 1: 175B on 4090 + 256 GB (4080 too).
    let consumer = paper_server()
        .with_gpu(GpuSpec::rtx4080())
        .with_main_memory(256 * GIB);
    let ratel_175 = System::Ratel.feasible(&consumer, &zoo::llm("175B"), 1);
    let others_cant = [
        System::ZeroInfinity,
        System::ZeroOffload,
        System::ColossalAi,
        System::FlashNeuron,
    ]
    .iter()
    .all(|s| !s.feasible(&consumer, &zoo::llm("175B"), 1));
    t.row(vec![
        "175B trains on 16-24 GB GPU + 256 GB host (only Ratel)".into(),
        "yes".into(),
        if ratel_175 && others_cant {
            "yes"
        } else {
            "NO"
        }
        .into(),
    ]);

    // Claim: max size ratio vs ZeRO-Infinity at 768 GB.
    let server = paper_server();
    let ratel_max = System::Ratel.max_trainable_billions(&server, &ladder, 1);
    let zero_max = System::ZeroInfinity.max_trainable_billions(&server, &ladder, 1);
    t.row(vec![
        "max size vs ZeRO-Infinity @768GB".into(),
        "276B vs 135B (2.04x)".into(),
        format!(
            "{ratel_max:.0}B vs {zero_max:.0}B ({:.2}x)",
            ratel_max / zero_max
        ),
    ]);

    // Claim 2: peak 13B throughput ratios.
    let batches = [8usize, 16, 32, 64, 128];
    let best = |sys: System| {
        sys.best_over_batches(&server, &zoo::llm("13B"), &batches)
            .map(|(_, r)| r.throughput_items_per_sec)
            .unwrap_or(0.0)
    };
    let ratel = best(System::Ratel);
    for (sys, paper) in [
        (System::ZeroOffload, "2.32x"),
        (System::ZeroInfinity, "3.46x"),
        (System::ColossalAi, "8.02x"),
    ] {
        t.row(vec![
            format!("13B peak throughput vs {}", sys.name()),
            paper.into(),
            format!("{:.2}x", ratel / best(sys)),
        ]);
    }

    // Fig 5c: fraction of peak at 13B.
    let r13 = System::Ratel
        .best_over_batches(&server, &zoo::llm("13B"), &batches)
        .unwrap()
        .1;
    t.row(vec![
        "13B achieved fraction of measured peak".into(),
        "90-95%".into(),
        fnum(100.0 * r13.tflops * 1e12 / server.gpu.measured_flops, 0) + "%",
    ]);

    // Claim 3: cost-effectiveness vs DGX.
    let cheap = paper_server().with_gpu_count(4).with_ssd_count(6);
    let tput = System::Ratel
        .best_over_batches(&cheap, &zoo::llm("30B"), &[8, 16, 32, 64])
        .unwrap()
        .1
        .throughput_items_per_sec;
    let ratel_ce = CostPoint::commodity("ratel", &cheap, tput).tokens_per_sec_per_kusd;
    let (_, mega) = megatron::best_tokens_per_sec(&zoo::llm("30B"), &[8, 16, 32, 64]).unwrap();
    let dgx_ce = CostPoint::dgx_a100("dgx", mega).tokens_per_sec_per_kusd;
    t.row(vec![
        "cost-effectiveness vs DGX-A100 (30B)".into(),
        "up to 2.17x".into(),
        format!("{:.2}x", ratel_ce / dgx_ce),
    ]);

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_headline_claim_holds() {
        let t = run();
        assert!(t.rows.len() >= 6);
        // Row 0: feasibility must say yes.
        assert_eq!(t.rows[0][2], "yes");
        // Ratio rows: measured factor must exceed 1 (Ratel wins).
        for row in &t.rows[1..] {
            let measured = row[2].trim_end_matches(['x', '%']);
            let v: f64 = measured
                .split_whitespace()
                .last()
                .unwrap()
                .trim_start_matches('(')
                .trim_end_matches("x)")
                .parse()
                .unwrap_or_else(|_| measured.parse().unwrap());
            assert!(v > 1.0, "{row:?}");
        }
    }
}
