//! Figure 12: throughput on diffusion models — Ratel vs Fast-DiT over
//! the Table VI DiT ladder at 512x512 inputs.

use ratel_baselines::{fastdit, System};
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

/// Regenerates Fig. 12 (images/s, best batch per system).
pub fn run() -> Table {
    let server = paper_server();
    let batches = [1usize, 2, 4, 8, 16, 32, 64];
    let mut t = Table::new(
        "Fig 12: throughput (image/s) on DiT models, RTX 4090",
        &["model", "Fast-DiT", "Ratel"],
    );
    for model in zoo::dit_ladder() {
        let fast = fastdit::best_images_per_sec(&server.gpu, &model, &batches)
            .map(|(_, v)| fnum(v, 1))
            .unwrap_or_else(|| "OOM".into());
        let ratel = System::Ratel
            .best_over_batches(&server, &model, &batches)
            .map(|(_, r)| fnum(r.throughput_items_per_sec, 1))
            .unwrap_or_else(|| "OOM".into());
        t.row(vec![model.name.clone(), fast, ratel]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastdit_ooms_on_the_large_backbones() {
        let t = run();
        let oom_count = t.rows.iter().filter(|r| r[1] == "OOM").count();
        assert!(oom_count >= 3, "{:?}", t.rows);
        // Ratel trains all of them.
        for row in &t.rows {
            assert_ne!(row[2], "OOM", "{row:?}");
        }
    }

    #[test]
    fn ratel_is_competitive_where_both_run() {
        let t = run();
        for row in &t.rows {
            if let (Ok(fast), Ok(ratel)) = (row[1].parse::<f64>(), row[2].parse::<f64>()) {
                // Ratel's larger feasible batch should at least keep it in
                // the same league, and it wins as models grow.
                assert!(ratel > fast * 0.5, "{row:?}");
            }
        }
    }
}
