//! Figure 1: per-stage breakdown and PCIe utilization of ZeRO-Infinity,
//! G10, and Ratel fine-tuning the 13B model at batch 32 on the paper's
//! 12-SSD server.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_baselines::System;
use ratel_model::{zoo, ModelProfile};
use ratel_sim::Stage;

use crate::figs::util_pct;
use crate::table::{fnum, Table};
use crate::{gpudirect_4090, paper_server};

/// Regenerates Fig. 1a/1b/1c as one table per system.
pub fn run() -> Vec<Table> {
    let model = zoo::llm("13B");
    let batch = 32;
    let mut out = Vec::new();
    let cases = [
        (
            "Fig 1a: ZeRO-Infinity",
            System::ZeroInfinity,
            paper_server(),
        ),
        (
            "Fig 1b: G10 (GPUDirect assumed, as in the paper's simulation)",
            System::G10,
            paper_server().with_gpu(gpudirect_4090()),
        ),
        ("Fig 1c: Ratel", System::Ratel, paper_server()),
    ];
    for (title, system, server) in cases {
        let mut t = Table::new(
            format!("{title} — 13B, batch 32, 12 SSDs"),
            &[
                "stage",
                "seconds",
                "PCIe M2G %",
                "PCIe G2M %",
                "SSD %",
                "GPU %",
            ],
        );
        if let Some(r) = system.simulate(&server, &model, batch) {
            for (stage, secs) in [
                (Stage::Forward, r.stage_seconds[0]),
                (Stage::Backward, r.stage_seconds[1]),
                (Stage::Optimizer, r.stage_seconds[2]),
            ] {
                t.row(vec![
                    stage.name().to_string(),
                    fnum(secs, 1),
                    fnum(util_pct(&r, "pcie-m2g0", stage), 0),
                    fnum(util_pct(&r, "pcie-g2m0", stage), 0),
                    fnum(util_pct(&r, "ssd", stage), 0),
                    fnum(util_pct(&r, "gpu0", stage), 0),
                ]);
            }
            t.row(vec![
                "TOTAL".into(),
                fnum(r.iteration_seconds, 1),
                String::new(),
                String::new(),
                String::new(),
                fnum(r.gpu_busy_fraction * 100.0, 0),
            ]);
        } else {
            t.row(vec!["infeasible".into()]);
        }
        out.push(t);
    }

    // Steady state: four back-to-back Ratel iterations with the
    // synchronous cross-iteration dependency, per-iteration time.
    let profile = ModelProfile::new(&model, batch);
    let server = paper_server();
    let hw = HardwareProfile::measure(&server, &profile, batch);
    let plan = ActivationPlanner::new(&hw, &profile).plan();
    let spec = RatelSchedule {
        profile: &hw,
        model: &profile,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    }
    .to_spec();
    let mut steady = Table::new(
        "Fig 1c addendum: Ratel steady state (4 chained iterations)",
        &["iterations", "seconds/iteration"],
    );
    for n in [1usize, 2, 4] {
        steady.row(vec![
            n.to_string(),
            fnum(spec.simulate_iterations(&profile, n).iteration_seconds, 1),
        ]);
    }
    out.push(steady);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_systems_produce_breakdowns() {
        let tables = run();
        assert_eq!(tables.len(), 4);
        for t in &tables[..3] {
            assert_eq!(t.rows.len(), 4, "{}: {:?}", t.title, t.rows);
        }
    }

    #[test]
    fn steady_state_stays_close_to_single_shot() {
        let tables = run();
        let steady = &tables[3];
        let one: f64 = steady.rows[0][1].parse().unwrap();
        let four: f64 = steady.rows[2][1].parse().unwrap();
        assert!((four - one).abs() / one < 0.1, "{one} vs {four}");
    }

    #[test]
    fn ratel_total_is_fastest() {
        let tables = run();
        let total = |t: &Table| -> f64 { t.rows.last().unwrap()[1].parse().unwrap() };
        let zero = total(&tables[0]);
        let g10 = total(&tables[1]);
        let ratel = total(&tables[2]);
        assert!(ratel < zero, "ratel {ratel} vs zero {zero}");
        assert!(ratel < g10, "ratel {ratel} vs g10 {g10}");
    }
}
