//! Figure 11: multi-GPU throughput — Ratel vs ZeRO-Infinity fine-tuning
//! 13B and 70B on 2 and 4 RTX 4090s (data parallel over a shared SSD
//! array and CPU).

use ratel_baselines::System;
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

fn table(model_name: &str, gpus: usize, global_batches: &[usize]) -> Table {
    let model = zoo::llm(model_name);
    let server = paper_server().with_gpu_count(gpus);
    let mut t = Table::new(
        format!("Fig 11: global throughput (token/s), {model_name} on {gpus}x RTX 4090"),
        &["global batch", "ZeRO-Infinity", "Ratel"],
    );
    for &gb in global_batches {
        if gb % gpus != 0 {
            continue;
        }
        let per_gpu = gb / gpus;
        let mut row = vec![gb.to_string()];
        for sys in [System::ZeroInfinity, System::Ratel] {
            row.push(
                sys.simulate(&server, &model, per_gpu)
                    .map(|r| fnum(r.throughput_items_per_sec, 0))
                    .unwrap_or_else(|| "OOM".into()),
            );
        }
        t.row(row);
    }
    t
}

/// Regenerates Fig. 11a-d.
pub fn run() -> Vec<Table> {
    vec![
        table("13B", 2, &[16, 32, 64, 128, 256]),
        table("70B", 2, &[16, 32, 48, 64]),
        table("13B", 4, &[32, 64, 128, 256, 512]),
        table("70B", 4, &[32, 64, 96, 128]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratel_wins_on_multi_gpu() {
        for t in run() {
            for row in &t.rows {
                if let (Ok(zero), Ok(ratel)) = (row[1].parse::<f64>(), row[2].parse::<f64>()) {
                    assert!(ratel > zero, "{}: {row:?}", t.title);
                }
            }
        }
    }

    #[test]
    fn four_gpus_beat_two_at_their_best_batch() {
        // At equal global batch, 4 GPUs run smaller per-GPU batches and
        // can lose efficiency; the scaling claim holds at each
        // configuration's best batch (the paper sweeps larger global
        // batches on 4 GPUs for the same reason).
        let tables = run();
        let best = |t: &Table| -> f64 {
            t.rows
                .iter()
                .filter_map(|r| r[2].parse::<f64>().ok())
                .fold(0.0, f64::max)
        };
        assert!(
            best(&tables[2]) > best(&tables[0]),
            "13B: 4-GPU best should win"
        );
        assert!(
            best(&tables[3]) > best(&tables[1]),
            "70B: 4-GPU best should win"
        );
    }
}
