//! Figure 9 + Table V: effect of the activation-management strategy.
//!
//! 9a compares five strategies on the 70B model across memory sizes
//! (each at its adopted batch, Table V); 9b sweeps the amount of swapped
//! activations for the 13B model and marks the planner's predicted
//! optimum (the "stars").

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_baselines::ActStrategy;
use ratel_hw::units::{GB, GIB};
use ratel_model::{zoo, ModelProfile};

use crate::paper_server;
use crate::table::{fnum, Table};

const TABLE_V_BATCHES: [usize; 3] = [16, 24, 32];

/// Fig. 9a plus Table V (adopted batch sizes).
pub fn run_a() -> Vec<Table> {
    let model = zoo::llm("70B");
    let mut tput = Table::new(
        "Fig 9a: throughput (token/s), 70B, strategies at their adopted batch",
        &[
            "main memory (GiB)",
            "Ratel+ZeRO",
            "Ratel+Cap",
            "Ratel+G10",
            "Ratel+CM",
            "Ratel+Optimized",
        ],
    );
    let mut batches = Table::new(
        "Table V: adopted batch size per strategy (70B)",
        &[
            "main memory (GiB)",
            "Ratel+ZeRO",
            "Ratel+Cap",
            "Ratel+G10",
            "Ratel+CM",
            "Ratel+Optimized",
        ],
    );
    for gib in [128u64, 256, 512] {
        let server = paper_server().with_main_memory(gib * GIB);
        let mut trow = vec![gib.to_string()];
        let mut brow = vec![gib.to_string()];
        for s in ActStrategy::ALL {
            match s.adopt_batch(&server, &model, &TABLE_V_BATCHES) {
                Some(b) => {
                    brow.push(b.to_string());
                    trow.push(
                        s.simulate(&server, &model, b)
                            .map(|r| fnum(r.throughput_items_per_sec, 0))
                            .unwrap_or_else(|| "failed".into()),
                    );
                }
                None => {
                    brow.push("Failed".into());
                    trow.push("Failed".into());
                }
            }
        }
        tput.row(trow);
        batches.row(brow);
    }
    vec![tput, batches]
}

/// One point of the Fig. 9b sweep: simulated iteration time when exactly
/// `swap_gb` gigabytes of activations are swapped.
pub fn iteration_seconds_at(batch: usize, swap_gb: f64) -> f64 {
    let server = paper_server();
    let model = ModelProfile::new(&zoo::llm("13B"), batch);
    let hw = HardwareProfile::measure(&server, &model, batch);
    let planner = ActivationPlanner::new(&hw, &model);
    let plan = planner.plan_with_swap_bytes(swap_gb * GB as f64);
    RatelSchedule {
        profile: &hw,
        model: &model,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    }
    .simulate()
    .iteration_seconds
}

/// Fig. 9b: iteration time vs swapped activation size, with the
/// planner's chosen point marked per batch.
pub fn run_b() -> Table {
    let server = paper_server();
    let sweep_gb = [0.0, 40.0, 80.0, 120.0, 160.0, 240.0, 320.0, 400.0];
    let mut headers: Vec<String> = vec!["swapped (GB)".into()];
    for b in [24usize, 36, 48, 60] {
        headers.push(format!("bsz={b}"));
    }
    let mut t = Table::new(
        "Fig 9b: iteration time (s) vs swapped activation size, 13B",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for &gb in &sweep_gb {
        let mut row = vec![fnum(gb, 0)];
        for b in [24usize, 36, 48, 60] {
            let model = ModelProfile::new(&zoo::llm("13B"), b);
            if gb * GB as f64 > model.total_act_bytes() {
                row.push("-".into());
            } else {
                row.push(fnum(iteration_seconds_at(b, gb), 1));
            }
        }
        t.row(row);
    }
    // The planner's predicted optimum per batch (the paper's stars).
    let mut star = vec!["planner optimum (GB)".to_string()];
    for b in [24usize, 36, 48, 60] {
        let model = ModelProfile::new(&zoo::llm("13B"), b);
        let hw = HardwareProfile::measure(&server, &model, b);
        let plan = ActivationPlanner::new(&hw, &model).plan();
        star.push(fnum(plan.a_g2m / GB as f64, 0));
    }
    t.row(star);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel::planner::PlanCase;

    #[test]
    fn fig9a_ratel_never_loses() {
        let tables = run_a();
        for row in &tables[0].rows {
            let ratel: f64 = row[5].parse().unwrap();
            for cell in &row[1..5] {
                if let Ok(v) = cell.parse::<f64>() {
                    assert!(ratel >= v * 0.999, "{row:?}");
                }
            }
        }
    }

    #[test]
    fn table_v_checkmate_fails_at_128() {
        let tables = run_a();
        assert_eq!(tables[1].rows[0][4], "Failed");
        assert_ne!(tables[1].rows[1][4], "Failed");
    }

    #[test]
    fn fig9b_planner_choice_is_near_the_sweep_minimum() {
        // For each batch, the simulated time at the planner's chosen swap
        // amount must be within 15% of the best simulated time over the
        // sweep (the paper: "nearly optimal predictions").
        let server = paper_server();
        for b in [36usize, 48, 60] {
            let model = ModelProfile::new(&zoo::llm("13B"), b);
            let hw = HardwareProfile::measure(&server, &model, b);
            let plan = ActivationPlanner::new(&hw, &model).plan();
            let chosen_gb = plan.a_g2m / 1e9;
            let chosen_t = iteration_seconds_at(b, chosen_gb);
            let total_gb = model.total_act_bytes() / 1e9;
            let best = (0..=10)
                .map(|i| iteration_seconds_at(b, total_gb * i as f64 / 10.0))
                .fold(f64::INFINITY, f64::min);
            assert!(
                chosen_t <= best * 1.15,
                "batch {b}: chosen {chosen_t:.1}s vs best {best:.1}s"
            );
        }
    }

    #[test]
    fn fig9b_small_batch_prefers_minimal_swap() {
        // Case 1 at small batch: the planner stays at/near the checkpoint
        // floor; at batch 60 it swaps much more (Case 3).
        let server = paper_server();
        let chosen = |b: usize| {
            let model = ModelProfile::new(&zoo::llm("13B"), b);
            let hw = HardwareProfile::measure(&server, &model, b);
            ActivationPlanner::new(&hw, &model).plan()
        };
        let small = chosen(24);
        let large = chosen(60);
        let small_frac = small.a_g2m / ModelProfile::new(&zoo::llm("13B"), 24).total_act_bytes();
        let large_frac = large.a_g2m / ModelProfile::new(&zoo::llm("13B"), 60).total_act_bytes();
        assert!(
            small_frac < large_frac,
            "{small_frac:.2} vs {large_frac:.2}"
        );
        assert_ne!(large.case, PlanCase::PcieBound);
    }
}
