//! Extension experiments beyond the paper's evaluation.
//!
//! * `ext-seqlen` — the paper fixes the sequence length at 1024; this
//!   sweep varies it. Attention FLOPs grow quadratically while activation
//!   bytes grow linearly, so longer sequences raise every layer's
//!   offloading benefit (`OB = FLOP/A`) and push the planner from Case 1
//!   (PCIe-bound, recompute) toward Case 2/3 (swap aggressively).
//! * `ext-pcie` — sweeps the GPU link bandwidth: on slow links the
//!   planner collapses toward the checkpoint floor (recompute nearly
//!   everything); as the link speeds up it swaps several times more
//!   bytes, until the SSD/CPU optimizer path becomes the binding
//!   resource and extra link bandwidth stops mattering — the crossover
//!   structure the paper's Fig. 9b shows at a single bandwidth.

use ratel::offload::GradOffloadMode;
use ratel::planner::{ActivationPlanner, PlanCase};
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_model::{zoo, ModelConfig, ModelProfile};

use crate::paper_server;
use crate::table::{fnum, Table};

fn simulate(hw: &HardwareProfile, model: &ModelProfile) -> (f64, f64, PlanCase, f64) {
    let plan = ActivationPlanner::new(hw, model).plan();
    let r = RatelSchedule {
        profile: hw,
        model,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    }
    .simulate();
    (
        r.iteration_seconds,
        r.throughput_items_per_sec,
        plan.case,
        plan.a_g2m / model.total_act_bytes(),
    )
}

/// Sequence-length sweep at fixed tokens-per-iteration (batch adjusts so
/// `batch * seq` stays 32k, like comparing packing strategies).
pub fn run_seqlen() -> Table {
    let server = paper_server();
    let mut t = Table::new(
        "Extension: sequence length sweep, 13B, 32k tokens/iteration",
        &[
            "seq len",
            "batch",
            "T_iter (s)",
            "token/s",
            "swap fraction",
            "planner case",
        ],
    );
    for seq in [512usize, 1024, 2048, 4096] {
        let batch = 32 * 1024 / seq;
        let config = ModelConfig {
            seq_len: seq,
            ..zoo::llm("13B")
        };
        let model = ModelProfile::new(&config, batch);
        let hw = HardwareProfile::measure(&server, &model, batch);
        let (iter, tput, case, frac) = simulate(&hw, &model);
        t.row(vec![
            seq.to_string(),
            batch.to_string(),
            fnum(iter, 1),
            fnum(tput, 0),
            fnum(frac, 2),
            format!("{case:?}"),
        ]);
    }
    t
}

/// GPU-link bandwidth sweep at 13B, batch 32.
pub fn run_pcie() -> Table {
    let server = paper_server();
    let model = ModelProfile::new(&zoo::llm("13B"), 32);
    let mut t = Table::new(
        "Extension: GPU link bandwidth sweep, 13B, batch 32",
        &[
            "PCIe GB/s per dir",
            "T_iter (s)",
            "swap fraction",
            "planner case",
        ],
    );
    for gbps in [4.0f64, 8.0, 16.0, 21.0, 32.0, 64.0, 128.0] {
        let mut hw = HardwareProfile::measure(&server, &model, 32);
        hw.bw_gpu = gbps * 1e9;
        let (iter, _, case, frac) = simulate(&hw, &model);
        t.row(vec![
            fnum(gbps, 0),
            fnum(iter, 1),
            fnum(frac, 2),
            format!("{case:?}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_sequences_swap_more() {
        let t = run_seqlen();
        let first: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            last >= first,
            "swap fraction should not shrink with sequence length: {first} vs {last}"
        );
    }

    #[test]
    fn faster_links_swap_more_and_run_faster() {
        let t = run_pcie();
        let fracs: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let iters: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Swap fraction is non-decreasing in bandwidth; iteration time is
        // non-increasing.
        for w in fracs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{fracs:?}");
        }
        for w in iters.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{iters:?}");
        }
        // Slow links collapse the swap toward the floor; fast links swap
        // at least 2x more, then plateau once the SSD/CPU path binds.
        assert!(
            fracs.first().unwrap() * 2.0 <= *fracs.last().unwrap(),
            "{fracs:?}"
        );
        let n = fracs.len();
        assert!(
            (fracs[n - 1] - fracs[n - 2]).abs() < 1e-6,
            "expected a plateau at high bandwidth: {fracs:?}"
        );
    }
}

/// Builds a Ratel iteration spec where only `trainable_fraction` of each
/// layer's parameters receive optimizer updates (LoRA-style adapters):
/// the full P16 still streams for forward/backward, but gradients and
/// optimizer-state I/O shrink to the adapter set.
fn lora_spec(
    hw: &HardwareProfile,
    model: &ModelProfile,
    trainable_fraction: f64,
) -> ratel::schedule::IterationSpec {
    use ratel::schedule::{IterationSpec, LayerTask, LinkRates, OptimizerKind};

    let plan = ActivationPlanner::new(hw, model).plan();
    let base = RatelSchedule {
        profile: hw,
        model,
        plan: &plan,
        mode: GradOffloadMode::OptimizedActive,
        gpus: 1,
    }
    .to_spec();
    let layers = base
        .layers
        .iter()
        .zip(&model.layers)
        .map(|(task, layer)| {
            let pt = layer.params * trainable_fraction;
            LayerTask {
                grad_bytes: 2.0 * pt,
                optimizer: if pt > 0.0 {
                    OptimizerKind::CpuOutOfCore {
                        read_bytes: 12.0 * pt,
                        write_bytes: 14.0 * pt,
                        cpu_params: pt,
                    }
                } else {
                    OptimizerKind::None
                },
                ..task.clone()
            }
        })
        .collect();
    IterationSpec {
        layers,
        mode: base.mode,
        rates: LinkRates::from_profile(hw),
        gpus: 1,
        items_per_iteration: base.items_per_iteration,
        per_layer_overhead_seconds: 0.0,
    }
}

/// `ext-lora`: full fine-tuning vs LoRA-style parameter-efficient
/// fine-tuning under Ratel's offloading.
pub fn run_lora() -> Table {
    let server = paper_server();
    let mut t = Table::new(
        "Extension: LoRA-style fine-tuning under Ratel (token/s, best of batch 8-64)",
        &["model", "full FT", "LoRA ~1%", "LoRA ~0.1%", "LoRA speedup"],
    );
    for (name, batches) in [
        ("13B", &[16usize, 32, 64][..]),
        ("70B", &[16, 32][..]),
        ("175B", &[8, 16][..]),
    ] {
        let best = |fraction: f64| -> f64 {
            batches
                .iter()
                .map(|&b| {
                    let model = ModelProfile::new(&zoo::llm(name), b);
                    let hw = HardwareProfile::measure(&server, &model, b);
                    lora_spec(&hw, &model, fraction)
                        .simulate(&model)
                        .throughput_items_per_sec
                })
                .fold(0.0, f64::max)
        };
        let full = best(1.0);
        let lora1 = best(0.01);
        let lora01 = best(0.001);
        t.row(vec![
            name.to_string(),
            fnum(full, 0),
            fnum(lora1, 0),
            fnum(lora01, 0),
            fnum(lora1 / full, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod lora_tests {
    use super::*;

    #[test]
    fn lora_removes_the_optimizer_bottleneck() {
        let t = run_lora();
        for row in &t.rows {
            let full: f64 = row[1].parse().unwrap();
            let lora: f64 = row[2].parse().unwrap();
            assert!(lora > full, "{row:?}");
        }
        // The win grows with model size (the optimizer I/O grows with P
        // while the GPU work per token does not).
        let first: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(last >= first, "speedups: {first} vs {last}");
    }

    #[test]
    fn tiny_adapters_approach_the_compute_bound() {
        let t = run_lora();
        for row in &t.rows {
            let lora1: f64 = row[2].parse().unwrap();
            let lora01: f64 = row[3].parse().unwrap();
            // Another 10x fewer trainable params gains little: the GPU is
            // already the bottleneck.
            assert!(lora01 <= lora1 * 1.25, "{row:?}");
        }
    }
}
