//! Figure 5: end-to-end throughput of Ratel vs the baselines — tokens/s
//! vs batch size on the RTX 4090 (5a) and 3090 (5b), and achieved TFLOPS
//! vs model size (5c).

use ratel_baselines::System;
use ratel_hw::{GpuSpec, ServerConfig};
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

const SYSTEMS: [System; 4] = [
    System::ColossalAi,
    System::ZeroInfinity,
    System::ZeroOffload,
    System::Ratel,
];

fn throughput_table(title: &str, server: &ServerConfig, batches: &[usize]) -> Table {
    let model = zoo::llm("13B");
    let mut t = Table::new(
        title,
        &[
            "batch",
            "Colossal-AI",
            "ZeRO-Infinity",
            "ZeRO-Offload",
            "Ratel",
        ],
    );
    for &b in batches {
        let mut row = vec![b.to_string()];
        for sys in SYSTEMS {
            row.push(
                sys.simulate(server, &model, b)
                    .map(|r| fnum(r.throughput_items_per_sec, 0))
                    .unwrap_or_else(|| "OOM".into()),
            );
        }
        t.row(row);
    }
    t
}

/// Fig. 5a: 13B on RTX 4090.
pub fn run_a() -> Table {
    throughput_table(
        "Fig 5a: throughput (token/s) fine-tuning 13B on RTX 4090",
        &paper_server(),
        &[8, 16, 32, 64, 128],
    )
}

/// Fig. 5b: 13B on RTX 3090.
pub fn run_b() -> Table {
    throughput_table(
        "Fig 5b: throughput (token/s) fine-tuning 13B on RTX 3090",
        &paper_server().with_gpu(GpuSpec::rtx3090()),
        &[8, 16, 32, 64],
    )
}

/// Fig. 5c: achieved TFLOPS vs model size on the 4090, at each system's
/// best feasible batch, plus the measured-peak reference line.
pub fn run_c() -> Table {
    let server = paper_server();
    let batches = [8usize, 16, 32, 48, 64, 96, 128];
    let mut t = Table::new(
        "Fig 5c: achieved TFLOPS vs model size on RTX 4090 (best batch per system)",
        &[
            "model",
            "ZeRO-Infinity",
            "ZeRO-Offload",
            "Ratel",
            "measured peak",
        ],
    );
    for name in ["13B", "30B", "70B", "135B", "175B"] {
        let model = zoo::llm(name);
        let mut row = vec![name.to_string()];
        for sys in [System::ZeroInfinity, System::ZeroOffload, System::Ratel] {
            row.push(
                sys.best_over_batches(&server, &model, &batches)
                    .map(|(_, r)| fnum(r.tflops, 0))
                    .unwrap_or_else(|| "OOM".into()),
            );
        }
        row.push(fnum(server.gpu.measured_flops / 1e12, 0));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_ratel_wins_every_feasible_batch() {
        let t = run_a();
        for row in &t.rows {
            let ratel: f64 = row[4].parse().unwrap();
            for cell in &row[1..4] {
                if let Ok(v) = cell.parse::<f64>() {
                    assert!(ratel > v, "batch {}: ratel {ratel} vs {v}", row[0]);
                }
            }
        }
    }

    #[test]
    fn fig5c_ratel_achieves_high_fraction_of_peak_on_small_models() {
        let t = run_c();
        // 13B row: Ratel within 50-100% of the measured peak (the paper
        // reports 90-95% for <=70B; the DES pays some pipeline fill).
        let row = &t.rows[0];
        let ratel: f64 = row[3].parse().unwrap();
        let peak: f64 = row[4].parse().unwrap();
        assert!(ratel / peak > 0.5, "ratel {ratel} peak {peak}");
        // And the baselines stay far below.
        let zero: f64 = row[1].parse().unwrap();
        assert!(zero / peak < 0.5, "zero {zero} peak {peak}");
    }

    #[test]
    fn fig5c_only_ratel_reaches_175b() {
        let t = run_c();
        let row = t.rows.last().unwrap();
        assert_eq!(row[0], "175B");
        assert_eq!(row[1], "OOM");
        assert_eq!(row[2], "OOM");
        assert!(row[3].parse::<f64>().unwrap() > 0.0);
    }
}
