//! Figure 13: cost-effectiveness — tokens/s per 1000 USD of Ratel on a
//! 4x RTX 4090 commodity server (varying SSD count) vs Megatron-LM on a
//! DGX-A100.

use ratel::cost::CostPoint;
use ratel_baselines::{megatron, System};
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

/// Regenerates Fig. 13 for the 30B model.
pub fn run() -> Table {
    let model = zoo::llm("30B");
    let batches = [8usize, 16, 32, 64];
    let mut t = Table::new(
        "Fig 13: cost-effectiveness fine-tuning 30B (token/s per 1000 USD)",
        &["config", "token/s", "price ($)", "token/s per k$"],
    );
    for ssds in [1usize, 2, 3, 6, 12] {
        let server = paper_server().with_gpu_count(4).with_ssd_count(ssds);
        let tput = System::Ratel
            .best_over_batches(&server, &model, &batches)
            .map(|(_, r)| r.throughput_items_per_sec)
            .unwrap_or(0.0);
        let p = CostPoint::commodity(&format!("Ratel 4x4090, {ssds} SSDs"), &server, tput);
        t.row(vec![
            p.label,
            fnum(p.tokens_per_sec, 0),
            fnum(p.price_usd, 0),
            fnum(p.tokens_per_sec_per_kusd, 1),
        ]);
    }
    let (_, mega) = megatron::best_tokens_per_sec(&model, &batches).expect("30B fits on DGX");
    let p = CostPoint::dgx_a100("Megatron-LM DGX-A100", mega);
    t.row(vec![
        p.label,
        fnum(p.tokens_per_sec, 0),
        fnum(p.price_usd, 0),
        fnum(p.tokens_per_sec_per_kusd, 1),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratel_beats_dgx_cost_effectiveness_at_the_sweet_spot() {
        let t = run();
        let dgx: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        let best_ratel = t.rows[..t.rows.len() - 1]
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(
            best_ratel > dgx,
            "ratel best {best_ratel:.1} vs dgx {dgx:.1}"
        );
    }

    #[test]
    fn too_many_ssds_reduce_cost_effectiveness() {
        // §V-I: beyond the optimal SSD count the extra cost buys little.
        let t = run();
        let vals: Vec<f64> = t.rows[..t.rows.len() - 1]
            .iter()
            .map(|r| r[3].parse().unwrap())
            .collect();
        let best = vals.iter().cloned().fold(0.0, f64::max);
        let last = *vals.last().unwrap();
        assert!(last < best, "{vals:?}");
    }
}
