//! `repro trace`: an ASCII Gantt view of one Ratel iteration — the
//! Fig. 1c picture rendered from the simulator's timeline. Useful for
//! eyeballing where each resource is busy and how the optimizer handlers
//! hide inside backward propagation.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_model::{zoo, ModelProfile};
use ratel_sim::simulate;

use crate::paper_server;

/// Renders the Gantt chart for `model_name` at `batch` under `mode`.
pub fn render(model_name: &str, batch: usize, mode: GradOffloadMode, width: usize) -> String {
    let server = paper_server();
    let model = ModelProfile::new(&zoo::llm(model_name), batch);
    let hw = HardwareProfile::measure(&server, &model, batch);
    let plan = ActivationPlanner::new(&hw, &model).plan();
    let spec = RatelSchedule {
        profile: &hw,
        model: &model,
        plan: &plan,
        mode,
        gpus: 1,
    }
    .to_spec();
    let (graph, _, _) = spec.build();
    let report = simulate(&graph);
    format!(
        "{} — {model_name} @ batch {batch} ({:.1}s/iter)\n{}",
        mode.name(),
        report.makespan,
        report.render_gantt(width)
    )
}

/// The default trace: 13B @ 32 under all three offload modes.
pub fn run() -> String {
    let mut out = String::new();
    for mode in GradOffloadMode::ALL {
        out.push_str(&render("13B", 32, mode, 100));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_all_modes() {
        let s = run();
        assert!(s.contains("Ratel Optimized"));
        assert!(s.contains("Ratel+ZeRO"));
        // The separate-stage chart must show an optimizer window ('O' on
        // the SSD/CPU rows); the optimized chart hides it in backward.
        assert!(s.matches('O').count() > 10);
        assert!(s.contains("gpu0"));
    }
}
