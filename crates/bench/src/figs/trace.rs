//! `ratel-bench trace`: timeline views of simulated Ratel iterations —
//! the Fig. 1c picture rendered from the simulator's recorded timeline.
//!
//! Built on the shared exporter in [`ratel_sim::trace`]: an ASCII Gantt
//! with per-resource utilization for the terminal, a per-stage
//! utilization table, a bubble (idle-gap) analysis of the critical
//! resource, and Chrome trace-event JSON (`--out trace.json`) loadable
//! in `chrome://tracing` or Perfetto.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_model::{zoo, ModelProfile};
use ratel_sim::{ascii_timeline, bubble_summary, simulate, utilization_table, SimReport};

use crate::paper_server;

/// What to trace: one simulated Ratel configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Table IV model name ("13B", "70B", ...).
    pub model: String,
    /// Per-GPU batch size.
    pub batch: usize,
    /// Gradient-offloading mode.
    pub mode: GradOffloadMode,
    /// Data-parallel GPU count.
    pub gpus: usize,
    /// Back-to-back iterations in one DAG.
    pub iterations: usize,
    /// ASCII chart width in character cells.
    pub width: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            model: "13B".to_string(),
            batch: 32,
            mode: GradOffloadMode::OptimizedActive,
            gpus: 1,
            iterations: 1,
            width: 100,
        }
    }
}

/// Parses a `--mode` value ("optimized", "naive", "separate"/"zero").
pub fn parse_mode(s: &str) -> Option<GradOffloadMode> {
    match s.to_ascii_lowercase().as_str() {
        "optimized" | "active" => Some(GradOffloadMode::OptimizedActive),
        "naive" => Some(GradOffloadMode::NaiveActive),
        "separate" | "zero" | "separate-stage" => Some(GradOffloadMode::SeparateStage),
        _ => None,
    }
}

/// Plans, builds, and simulates the configured iteration(s).
pub fn report(cfg: &TraceConfig) -> SimReport {
    let server = paper_server();
    let model = ModelProfile::new(&zoo::llm(&cfg.model), cfg.batch);
    let hw = HardwareProfile::measure(&server, &model, cfg.batch);
    let plan = ActivationPlanner::new(&hw, &model).plan();
    let spec = RatelSchedule {
        profile: &hw,
        model: &model,
        plan: &plan,
        mode: cfg.mode,
        gpus: cfg.gpus,
    }
    .to_spec();
    let (graph, _, _) = spec.build_iterations(cfg.iterations);
    simulate(&graph)
}

/// Renders the terminal view of a trace: header, ASCII timeline,
/// utilization breakdown, and the critical resource's longest bubbles.
pub fn render_report(cfg: &TraceConfig, report: &SimReport) -> String {
    format!(
        "{} — {} @ batch {} x{} GPU(s), {} iteration(s) ({:.1}s total)\n{}\n{}\n{}",
        cfg.mode.name(),
        cfg.model,
        cfg.batch,
        cfg.gpus,
        cfg.iterations,
        report.makespan,
        ascii_timeline(report, cfg.width),
        utilization_table(report),
        bubble_summary(report, 5),
    )
}

/// Renders one mode with the default 13B @ 32 configuration.
pub fn render(model_name: &str, batch: usize, mode: GradOffloadMode, width: usize) -> String {
    let cfg = TraceConfig {
        model: model_name.to_string(),
        batch,
        mode,
        width,
        ..TraceConfig::default()
    };
    let r = report(&cfg);
    render_report(&cfg, &r)
}

/// The default trace: 13B @ 32 under all three offload modes.
pub fn run() -> String {
    let mut out = String::new();
    for mode in GradOffloadMode::ALL {
        out.push_str(&render("13B", 32, mode, 100));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_all_modes() {
        let s = run();
        assert!(s.contains("Ratel Optimized"));
        assert!(s.contains("Ratel+ZeRO"));
        // The separate-stage chart must show an optimizer window ('O' on
        // the SSD/CPU rows); the optimized chart hides it in backward.
        assert!(s.matches('O').count() > 10);
        assert!(s.contains("gpu0"));
        // The shared exporter's extra sections are present.
        assert!(s.contains("critical resource:"));
        assert!(s.contains("resource"));
        assert!(s.contains("util"));
    }

    #[test]
    fn mode_parsing_covers_aliases() {
        assert_eq!(
            parse_mode("optimized"),
            Some(GradOffloadMode::OptimizedActive)
        );
        assert_eq!(parse_mode("Naive"), Some(GradOffloadMode::NaiveActive));
        assert_eq!(parse_mode("zero"), Some(GradOffloadMode::SeparateStage));
        assert_eq!(parse_mode("separate"), Some(GradOffloadMode::SeparateStage));
        assert!(parse_mode("bogus").is_none());
    }

    #[test]
    fn chrome_export_of_a_real_schedule_is_labeled() {
        let cfg = TraceConfig {
            iterations: 2,
            width: 60,
            ..TraceConfig::default()
        };
        let r = report(&cfg);
        let json = ratel_sim::chrome_trace_json(&r);
        // Multi-iteration labels land in the trace slices.
        assert!(json.contains("\"name\":\"i0 fwd L0\""));
        assert!(json.contains("\"name\":\"i1 opt-write L0\""));
        assert!(json.contains("\"args\":{\"name\":\"ssd\"}"));
    }
}
