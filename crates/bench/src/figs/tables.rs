//! The paper's configuration tables, regenerated from the library so the
//! repo's constants and the paper stay reconciled: Table II (tensor
//! inventory), Table IV (LLM zoo), Table VI (DiT zoo), Table VII
//! (prices).

use ratel_hw::price::{
    commodity_server_price, COMMODITY_4U_BASE_USD, DGX_A100_PRICE_USD, P5510_PRICE_USD,
    RTX_4090_PRICE_USD,
};
use ratel_model::{zoo, ModelStates, TensorKind};

use crate::paper_server;
use crate::table::{fnum, Table};

/// Regenerates Tables II, IV, VI, and VII.
pub fn run() -> Vec<Table> {
    let mut t2 = Table::new(
        "Table II: tensors in LLM fine-tuning (13B example)",
        &["tensor", "bytes/param", "13B size (GB)"],
    );
    let p13 = zoo::llm("13B").total_params();
    let states = ModelStates::of(&zoo::llm("13B"));
    for (kind, name) in [
        (TensorKind::P32, "P32"),
        (TensorKind::Os32, "OS32"),
        (TensorKind::G16, "G16"),
        (TensorKind::P16, "P16"),
    ] {
        t2.row(vec![
            name.to_string(),
            fnum(kind.bytes_per_param(), 0),
            fnum(kind.bytes_per_param() * p13 / 1e9, 1),
        ]);
    }
    t2.row(vec![
        "total states".into(),
        "16".into(),
        fnum(states.total() / 1e9, 1),
    ]);

    let mut t4 = Table::new(
        "Table IV: LLM zoo",
        &["model", "layers", "heads", "hidden", "params (B)"],
    );
    for m in zoo::llm_ladder() {
        t4.row(vec![
            m.name.clone(),
            m.layers.to_string(),
            m.heads.to_string(),
            m.hidden.to_string(),
            fnum(m.size_billions(), 1),
        ]);
    }

    let mut t6 = Table::new(
        "Table VI: DiT zoo",
        &["model", "layers", "heads", "hidden", "params (B)"],
    );
    for m in zoo::dit_ladder() {
        t6.row(vec![
            m.name.clone(),
            m.layers.to_string(),
            m.heads.to_string(),
            m.hidden.to_string(),
            fnum(m.size_billions(), 2),
        ]);
    }

    let mut t7 = Table::new("Table VII: component prices", &["component", "price ($)"]);
    t7.row(vec![
        "DGX-A100 (8x A100-80G)".into(),
        fnum(DGX_A100_PRICE_USD, 0),
    ]);
    t7.row(vec![
        "Commodity 4U server (no GPUs/SSDs)".into(),
        fnum(COMMODITY_4U_BASE_USD, 0),
    ]);
    t7.row(vec!["NVIDIA RTX 4090".into(), fnum(RTX_4090_PRICE_USD, 0)]);
    t7.row(vec!["Intel P5510 SSD".into(), fnum(P5510_PRICE_USD, 0)]);
    t7.row(vec![
        "Ratel server (4x4090 + 12 SSDs)".into(),
        fnum(commodity_server_price(&paper_server().with_gpu_count(4)), 0),
    ]);

    vec![t2, t4, t6, t7]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shapes() {
        let ts = run();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[1].rows.len(), 8); // Table IV ladder
        assert_eq!(ts[2].rows.len(), 6); // Table VI ladder
    }
}
