//! Figure 2: the issues motivating Ratel — max trainable size of the
//! SSD-offloading baselines (2a), ZeRO-Infinity's GPU busy time (2b),
//! and its optimizer-stage proportion (2c).

use ratel_baselines::System;
use ratel_hw::units::GIB;
use ratel_model::zoo;

use crate::paper_server;
use crate::table::{fnum, Table};

const MEM_GIB: [u64; 6] = [128, 256, 384, 512, 640, 768];
const BATCHES: [usize; 4] = [8, 16, 32, 64];
const MODELS: [&str; 3] = ["13B", "30B", "70B"];

/// Fig. 2a: largest trainable model size vs main memory capacity.
pub fn run_a() -> Table {
    let ladder = zoo::llm_ladder();
    let mut t = Table::new(
        "Fig 2a: max trainable model size (B) vs main memory, batch 1, RTX 4090",
        &[
            "main memory (GiB)",
            "FlashNeuron",
            "Colossal-AI",
            "ZeRO-Infinity",
        ],
    );
    for gib in MEM_GIB {
        let server = paper_server().with_main_memory(gib * GIB);
        let mut row = vec![gib.to_string()];
        for sys in [
            System::FlashNeuron,
            System::ColossalAi,
            System::ZeroInfinity,
        ] {
            row.push(fnum(sys.max_trainable_billions(&server, &ladder, 1), 1));
        }
        t.row(row);
    }
    t
}

/// Fig. 2b: ZeRO-Infinity GPU busy time (%) vs batch size.
pub fn run_b() -> Table {
    let mut t = Table::new(
        "Fig 2b: ZeRO-Infinity GPU busy time (%) vs batch size",
        &["batch", "13B", "30B", "70B"],
    );
    let server = paper_server();
    for b in BATCHES {
        let mut row = vec![b.to_string()];
        for m in MODELS {
            let cell = System::ZeroInfinity
                .simulate(&server, &zoo::llm(m), b)
                .map(|r| fnum(r.gpu_busy_fraction * 100.0, 0))
                .unwrap_or_else(|| "OOM".into());
            row.push(cell);
        }
        t.row(row);
    }
    t
}

/// Fig. 2c: proportion of the optimizer stage (%) in a training step.
pub fn run_c() -> Table {
    let mut t = Table::new(
        "Fig 2c: ZeRO-Infinity optimizer-stage proportion (%) vs batch size",
        &["batch", "13B", "30B", "70B"],
    );
    let server = paper_server();
    for b in BATCHES {
        let mut row = vec![b.to_string()];
        for m in MODELS {
            let cell = System::ZeroInfinity
                .simulate(&server, &zoo::llm(m), b)
                .map(|r| fnum(r.optimizer_fraction * 100.0, 0))
                .unwrap_or_else(|| "OOM".into());
            row.push(cell);
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_flashneuron_never_reaches_6b() {
        let t = run_a();
        for row in &t.rows {
            let fn_max: f64 = row[1].parse().unwrap();
            assert!(fn_max < 6.0, "{row:?}");
        }
    }

    #[test]
    fn fig2a_zero_infinity_grows_with_memory() {
        let t = run_a();
        let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last > first);
        assert!((130.0..140.0).contains(&last), "{last}");
    }

    #[test]
    fn fig2c_optimizer_share_shrinks_with_batch() {
        let t = run_c();
        let first: f64 = t.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(first > last, "{first} vs {last}");
        assert!(first >= 30.0, "{first}");
    }
}
