//! `ratel-bench verify-plans`: statically verifies every schedule this
//! repo can emit — the model zoo × every gradient-offloading mode for
//! Ratel, plus every baseline system at its best feasible batch — using
//! the `ratel-verify` passes, without running the simulator. Exits
//! non-zero if any plan violates a dataflow, residency, or resource
//! invariant, which makes it a cheap CI gate for planner and schedule
//! changes.

use ratel::offload::GradOffloadMode;
use ratel::planner::ActivationPlanner;
use ratel::profile::HardwareProfile;
use ratel::schedule::RatelSchedule;
use ratel_baselines::System;
use ratel_model::{zoo, ModelConfig, ModelProfile};
use ratel_verify::{Limits, VerifyReport};

/// Batch sizes tried per model; each plan is checked at the largest
/// feasible one.
const BATCHES: [usize; 3] = [1, 8, 32];

/// Relative slack on residency budgets, to keep exact-fit plans (the
/// planner fills `MEM_avail` to the byte) from tripping on rounding.
const BUDGET_SLACK: f64 = 1e-9;

/// Configuration for the `verify-plans` sweep.
#[derive(Debug, Clone)]
pub struct VerifyPlansConfig {
    /// Only verify plans for this model name (e.g. `13B`), if set.
    pub model: Option<String>,
    /// Back-to-back iterations per Ratel plan (cross-iteration hazards
    /// such as stale-parameter reuse only appear with at least 2).
    pub iterations: usize,
    /// Write the machine-readable JSON report here, if set.
    pub out: Option<String>,
}

impl Default for VerifyPlansConfig {
    fn default() -> Self {
        VerifyPlansConfig {
            model: None,
            iterations: 2,
            out: None,
        }
    }
}

/// One verified plan.
#[derive(Debug)]
pub struct PlanCheck {
    /// System / mode legend name.
    pub system: String,
    /// Model name.
    pub model: String,
    /// Batch size the plan was built for.
    pub batch: usize,
    /// Iterations the verified graph spans.
    pub iterations: usize,
    /// The verifier's report.
    pub report: VerifyReport,
}

/// The whole sweep's outcome.
#[derive(Debug, Default)]
pub struct VerifyPlansReport {
    /// Every plan checked.
    pub checks: Vec<PlanCheck>,
    /// Plans skipped because no candidate batch was feasible.
    pub skipped: usize,
}

impl VerifyPlansReport {
    /// Total violations across all checked plans.
    pub fn violations(&self) -> usize {
        self.checks.iter().map(|c| c.report.findings.len()).sum()
    }

    /// Machine-readable JSON for the whole sweep.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"plans\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"system\":\"{}\",\"model\":\"{}\",\"batch\":{},\"iterations\":{},\"report\":{}}}",
                c.system,
                c.model,
                c.batch,
                c.iterations,
                c.report.to_json()
            ));
        }
        out.push_str(&format!(
            "],\"skipped\":{},\"violations\":{}}}",
            self.skipped,
            self.violations()
        ));
        out
    }
}

fn models(cfg: &VerifyPlansConfig) -> Vec<ModelConfig> {
    let mut all = zoo::llm_ladder();
    all.extend(zoo::dit_ladder());
    if let Some(name) = &cfg.model {
        all.retain(|m| m.name == *name);
    }
    all
}

fn slack(budget: f64) -> f64 {
    budget * (1.0 + BUDGET_SLACK) + 1.0
}

/// Runs the sweep.
pub fn run(cfg: &VerifyPlansConfig) -> Result<VerifyPlansReport, String> {
    let models = models(cfg);
    if models.is_empty() {
        return Err(format!(
            "no zoo model matches {:?}; try one of: {}",
            cfg.model.as_deref().unwrap_or(""),
            zoo::llm_ladder()
                .iter()
                .chain(zoo::dit_ladder().iter())
                .map(|m| m.name.as_str())
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    let server = crate::paper_server();
    // The paper's own G10 methodology: simulate it as if the consumer GPU
    // had GPUDirect (§III-C); on the stock 4090 it is never feasible.
    let g10_server = crate::paper_server().with_gpu(crate::gpudirect_4090());

    let mut report = VerifyPlansReport::default();
    for model in &models {
        // Ratel's planner output under every gradient-offloading mode,
        // verified against the §IV-D budgets the planner claims to
        // respect: host activations fit MEM_avail, SSD spill fits the
        // plan's own spill allowance.
        match System::Ratel.max_batch(&server, model, &BATCHES) {
            None => report.skipped += GradOffloadMode::ALL.len(),
            Some(batch) => {
                let profile = ModelProfile::new(model, batch);
                let hw = HardwareProfile::measure(&server, &profile, batch);
                let plan = ActivationPlanner::new(&hw, &profile).plan();
                for mode in GradOffloadMode::ALL {
                    let spec = RatelSchedule {
                        profile: &hw,
                        model: &profile,
                        plan: &plan,
                        mode,
                        gpus: server.gpu_count,
                    }
                    .to_spec();
                    let limits = Limits {
                        gpu: None,
                        host: Some(slack(hw.mem_avail)),
                        ssd: Some(slack(plan.spill_bytes)),
                    };
                    report.checks.push(PlanCheck {
                        system: mode.name().to_string(),
                        model: model.name.clone(),
                        batch,
                        iterations: cfg.iterations,
                        report: spec.verify(cfg.iterations, &limits),
                    });
                }
            }
        }

        // Baseline systems against their physical capacities. Ratel is
        // covered above (System::Ratel is the OptimizedActive plan).
        for sys in System::ALL {
            if sys == System::Ratel {
                continue;
            }
            let server = if sys == System::G10 {
                &g10_server
            } else {
                &server
            };
            match sys.max_batch(server, model, &BATCHES) {
                None => report.skipped += 1,
                Some(batch) => {
                    let spec = sys
                        .spec(server, model, batch)
                        .expect("max_batch returned a feasible batch");
                    let limits = Limits {
                        gpu: None,
                        host: Some(slack(server.usable_main_memory() as f64)),
                        ssd: Some(slack(server.ssds.capacity_bytes() as f64)),
                    };
                    report.checks.push(PlanCheck {
                        system: sys.name().to_string(),
                        model: model.name.clone(),
                        batch,
                        iterations: 1,
                        report: spec.verify(1, &limits),
                    });
                }
            }
        }
    }
    Ok(report)
}

/// Renders the sweep as an aligned text report.
pub fn render(cfg: &VerifyPlansConfig, report: &VerifyPlansReport) -> String {
    let mut out = format!(
        "verify-plans: {} plan(s) over {} batch candidates {:?}, {} Ratel iteration(s)\n",
        report.checks.len(),
        BATCHES.len(),
        BATCHES,
        cfg.iterations,
    );
    let width = report
        .checks
        .iter()
        .map(|c| c.system.len())
        .max()
        .unwrap_or(0);
    for c in &report.checks {
        if c.report.is_clean() {
            out.push_str(&format!(
                "  ok    {:width$}  {:>6}  b{:<3}  {} tasks, {} versions, {} intervals\n",
                c.system,
                c.model,
                c.batch,
                c.report.tasks_checked,
                c.report.versions_seen,
                c.report.intervals,
            ));
        } else {
            out.push_str(&format!(
                "  FAIL  {:width$}  {:>6}  b{:<3}  {} violation(s)\n",
                c.system,
                c.model,
                c.batch,
                c.report.findings.len(),
            ));
            for line in c.report.render().lines().skip(1) {
                out.push_str(&format!("      {}\n", line.trim_start()));
            }
        }
    }
    let v = report.violations();
    if v == 0 {
        out.push_str(&format!(
            "all {} plan(s) clean ({} skipped as infeasible)\n",
            report.checks.len(),
            report.skipped
        ));
    } else {
        out.push_str(&format!(
            "{v} violation(s) across {} plan(s) ({} skipped as infeasible)\n",
            report.checks.len(),
            report.skipped
        ));
    }
    out
}
