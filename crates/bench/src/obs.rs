//! `ratel-bench obs`: end-to-end smoke of the observability plane.
//!
//! Runs an instrumented engine with the live plan-conformance monitor
//! enabled, then exercises every export path the plane offers: the
//! Prometheus text exposition (self-checked with
//! [`ratel_obs::metrics::validate_prometheus`]), the JSONL dump, the
//! Chrome trace with prefetch→consumer flow arrows, and the flight
//! recorder's occupancy. A clean run must produce **zero** conformance
//! findings — CI runs this on the tiny model as the obs smoke gate —
//! and any drift surfaces both as a structured finding in the report
//! and as a `Drift` event in the flight recorder.

use ratel::engine::conformance::ConformanceConfig;
use ratel::engine::data::random_batch;
use ratel::engine::obs::publish_engine_metrics;
use ratel::engine::RatelEngine;
use ratel_obs::metrics::validate_prometheus;
use ratel_storage::telemetry::FaultStats;
use ratel_storage::Route;

use crate::validate::{route_caps, validate_engine_config, validate_model};

/// What to run: one engine configuration plus export destinations.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Model shape name (`tiny` or `small`).
    pub model: String,
    /// Instrumented steps to run (each one is conformance-checked).
    pub steps: usize,
    /// Optional throttle factor: when set, per-route throttles are
    /// derived from the paper server (like `validate`) and the same
    /// caps become the conformance monitor's bandwidth-stall targets.
    pub throttle: Option<f64>,
    /// Prometheus text exposition output path.
    pub metrics_out: Option<String>,
    /// JSONL metrics output path.
    pub jsonl_out: Option<String>,
    /// Chrome-trace output path (last step, with prefetch flow arrows).
    pub trace_out: Option<String>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            model: "tiny".into(),
            steps: 5,
            throttle: None,
            metrics_out: None,
            jsonl_out: None,
            trace_out: None,
        }
    }
}

/// One step's observable surface, as the monitor saw it.
#[derive(Debug, Clone)]
pub struct ObsStep {
    /// Training loss.
    pub loss: f32,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Bytes moved across all routes this step.
    pub traffic_total: u64,
    /// Fault counters that ticked during this step.
    pub fault_stats: FaultStats,
    /// Rendered conformance findings (empty on a clean step).
    pub findings: Vec<String>,
}

/// Everything one obs run produced.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Per-step observations, in order.
    pub steps: Vec<ObsStep>,
    /// Conformance findings across all steps (rendered).
    pub findings: Vec<String>,
    /// Samples counted by the Prometheus exposition self-check.
    pub samples: usize,
    /// The Prometheus text exposition.
    pub metrics_text: String,
    /// The JSONL metrics dump.
    pub metrics_jsonl: String,
    /// Flight-recorder events written since process start.
    pub flight_events: u64,
    /// Flight-recorder ring capacity.
    pub flight_capacity: u64,
    /// Planned per-route bytes the monitor checked against, indexed
    /// like [`Route::ALL`].
    pub planned_bytes: [u64; 4],
}

impl ObsReport {
    /// Reasons this run fails the smoke gate: any conformance finding
    /// (a clean engine must match its own plan exactly).
    pub fn failures(&self) -> Vec<String> {
        self.findings.clone()
    }
}

/// Runs the instrumented steps, conformance-checks each, publishes the
/// unified metrics, and self-checks every export format.
pub fn run(cfg: &ObsConfig) -> Result<ObsReport, String> {
    let model =
        validate_model(&cfg.model).ok_or_else(|| format!("unknown model {:?}", cfg.model))?;
    let mut engine =
        RatelEngine::new(validate_engine_config(model)).map_err(|e| format!("engine: {e}"))?;

    let mut conformance = ConformanceConfig::default();
    if let Some(factor) = cfg.throttle {
        let caps = route_caps(&crate::paper_server(), factor);
        for (route, cap) in caps {
            engine.set_route_throttle(route, Some(cap));
            // Under a hard throttle the cap *is* the expected bandwidth,
            // so the stall detector gets a meaningful floor.
            conformance.bandwidth_targets[route.index()] = Some(cap);
        }
    }
    engine.enable_conformance(conformance);
    let planned_bytes = engine.movement_spec().planned_route_bytes();

    let (tokens, targets) = random_batch(&model, 1234);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut findings = Vec::new();
    for _ in 0..cfg.steps.max(1) {
        let stats = engine
            .train_step(&tokens, &targets)
            .map_err(|e| format!("train step: {e}"))?;
        let step_findings: Vec<String> = engine
            .conformance_findings()
            .iter()
            .map(|f| f.to_string())
            .collect();
        findings.extend(step_findings.iter().cloned());
        steps.push(ObsStep {
            loss: stats.loss,
            wall_seconds: stats.wall_seconds,
            traffic_total: stats.traffic.total(),
            fault_stats: stats.fault_stats,
            findings: step_findings,
        });
    }

    // One registry snapshot covers every subsystem; the exposition
    // self-check proves the export is well-formed without a Prometheus.
    let registry = ratel_obs::registry();
    publish_engine_metrics(&engine, registry);
    let metrics_text = registry.prometheus_text();
    let samples =
        validate_prometheus(&metrics_text).map_err(|e| format!("exposition self-check: {e}"))?;
    let metrics_jsonl = registry.jsonl();

    if let Some(path) = &cfg.metrics_out {
        std::fs::write(path, &metrics_text).map_err(|e| format!("could not write {path}: {e}"))?;
    }
    if let Some(path) = &cfg.jsonl_out {
        std::fs::write(path, &metrics_jsonl).map_err(|e| format!("could not write {path}: {e}"))?;
    }
    if let Some(path) = &cfg.trace_out {
        let telemetry = engine
            .last_step_telemetry()
            .expect("conformance keeps telemetry on");
        let timeline = telemetry.timeline("measured");
        let json = ratel_sim::chrome_trace_json_timelines(&[timeline]);
        std::fs::write(path, json).map_err(|e| format!("could not write {path}: {e}"))?;
    }

    let flight = ratel_obs::flight();
    Ok(ObsReport {
        steps,
        findings,
        samples,
        metrics_text,
        metrics_jsonl,
        flight_events: flight.recorded(),
        flight_capacity: flight.capacity() as u64,
        planned_bytes,
    })
}

/// Renders the obs report as aligned text.
pub fn render(cfg: &ObsConfig, report: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "observability smoke: model={} steps={}{}\n\n",
        cfg.model,
        report.steps.len(),
        match cfg.throttle {
            Some(t) => format!(" throttle={t:.0e} (stall targets armed)"),
            None => String::new(),
        }
    ));
    out.push_str("planned per-route bytes (conformance reference):\n");
    for (i, route) in Route::ALL.iter().enumerate() {
        out.push_str(&format!(
            "  {:<10} {:>12}\n",
            route.name(),
            report.planned_bytes[i]
        ));
    }
    out.push_str("\nper-step conformance:\n");
    for (i, s) in report.steps.iter().enumerate() {
        let verdict = if s.findings.is_empty() {
            "conforms".to_string()
        } else {
            format!("{} finding(s)", s.findings.len())
        };
        let faults = if s.fault_stats.is_empty() {
            String::new()
        } else {
            format!(
                ", faults: {} retries / {} give-ups / {} spills",
                s.fault_stats.retries, s.fault_stats.give_ups, s.fault_stats.host_spills
            )
        };
        out.push_str(&format!(
            "  step {i:>3}: loss {:.4}  ({:.0} ms, {} MB moved, {verdict}{faults})\n",
            s.loss,
            s.wall_seconds * 1e3,
            s.traffic_total / 1_000_000,
        ));
        for f in &s.findings {
            out.push_str(&format!("    drift: {f}\n"));
        }
    }
    out.push_str(&format!(
        "\nmetrics: {} samples pass the Prometheus exposition self-check\n",
        report.samples
    ));
    out.push_str(&format!(
        "flight recorder: {} events recorded (ring capacity {})\n",
        report.flight_events, report.flight_capacity
    ));
    if report.findings.is_empty() {
        out.push_str("conformance: clean — every step matched the verified plan\n");
    } else {
        out.push_str(&format!(
            "conformance: {} finding(s) — see drift lines above\n",
            report.findings.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_has_zero_findings_and_valid_exports() {
        let cfg = ObsConfig {
            steps: 2,
            ..ObsConfig::default()
        };
        let report = run(&cfg).expect("obs run succeeds");
        assert!(
            report.failures().is_empty(),
            "clean run drifted: {:?}",
            report.findings
        );
        assert_eq!(report.steps.len(), 2);
        assert!(report.samples > 10, "thin metric surface");
        assert!(report.metrics_text.contains("ratel_route_bytes_total"));
        assert!(report.metrics_jsonl.contains("\"name\""));
        assert!(report.flight_events > 0, "flight recorder stayed silent");
        let rendered = render(&cfg, &report);
        assert!(rendered.contains("conformance: clean"));
    }

    #[test]
    fn unknown_model_is_rejected() {
        let cfg = ObsConfig {
            model: "100B".into(),
            ..ObsConfig::default()
        };
        assert!(run(&cfg).is_err());
    }
}
