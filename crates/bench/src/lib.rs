#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the Ratel
//! paper's evaluation (§V).
//!
//! Each `figs::figN` module computes one figure's data series through the
//! simulator/planner/baselines and renders it as an aligned text table
//! (and CSV under `results/`). The `repro` binary dispatches on figure
//! names; `repro all` regenerates everything, which is what
//! EXPERIMENTS.md records.

pub mod faults;
pub mod figs;
pub mod obs;
pub mod perf;
pub mod table;
pub mod validate;
pub mod verify_plans;

use ratel_hw::ServerConfig;

/// The paper's evaluation server (Table III).
pub fn paper_server() -> ServerConfig {
    ServerConfig::paper_default()
}

/// A 4090 that pretends to support GPUDirect — the paper's own G10
/// methodology ("we simulate the performance of G10 ... assuming the
/// GPUDirect is available", §III-C).
pub fn gpudirect_4090() -> ratel_hw::GpuSpec {
    ratel_hw::GpuSpec {
        gpudirect: true,
        ..ratel_hw::GpuSpec::rtx4090()
    }
}
