//! The tracked perf trajectory: measured kernel / optimizer / SSD
//! throughput, emitted as `BENCH_*.json` files committed at the repo
//! root and re-checked by `ratel-bench bench --check`.
//!
//! Five suites:
//!
//! * **kernels** — GFLOP/s of the naive reference matmul vs the tiled
//!   GEMM at 1 and 4 configured worker threads, over a size ladder,
//!   plus the fused f16-dequant GEMM against its decode-then-multiply
//!   equivalent;
//! * **attention** — attention cells/s of the streaming tiled causal
//!   attention (forward and backward) vs the materialized-score naive
//!   oracle over a sequence-length ladder, the streaming/naive speedup
//!   ratios, the per-block saved-activation bytes (a `bytes` entry:
//!   any growth fails the check), and steady-state allocation counts
//!   for both streaming kernels (asserted zero);
//! * **adam** — elements/s of the flat-buffer CPU Adam step at 1 and 4
//!   threads, plus steady-state allocation counts for the hot kernels
//!   (asserted zero: regressions reintroducing per-call allocation fail
//!   the bench, not just slow it down);
//! * **ssd** — GB/s of the SSD tier per route: per-blob random writes vs
//!   one coalesced `put_batch` segment write, and the read-back path;
//! * **executor** — steps/s of the schedule-driven resource-pool
//!   executor vs both legacy stage loops on a route-throttled engine
//!   (so transfer overlap, not raw compute, decides the ranking), plus
//!   the executor's speedup over each and its per-pool utilisation.
//!   Speedups and utilisations use the `ratio` metric, which the
//!   regression check compares *without* calibration scaling: a ratio
//!   of two wall-clocks on the same box is already machine-free.
//!
//! Everything is hand-rolled (timing, JSON emit, JSON parse) so the
//! harness adds no dependencies. Timing takes the minimum over a few
//! samples — the standard way to reject scheduler noise on a shared box.
//! Each file also records a [`calibration_score`] — a fixed scalar
//! workload's throughput on the machine that wrote it — and the
//! regression check rescales by the calibration ratio, so CI boxes
//! slower (or faster) than the baseline writer compare code against
//! code rather than machine against machine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use ratel_storage::{Tier, TierConfig, TieredStore};
use ratel_tensor::{gemm, ops, set_num_threads, Adam, AdamParams, Tensor};

/// Schema tag every BENCH file must carry.
pub const SCHEMA: &str = "ratel-bench-perf/1";

/// Relative slowdown vs the committed baseline that fails `--check`.
pub const REGRESSION_THRESHOLD: f64 = 0.20;

/// The suite names, in emission order.
// Attention runs first: its streaming/naive speedup ratios are compared
// un-calibrated against the committed baseline, and they compress
// measurably on a package still hot from the kernel suite's sustained
// AVX2 work. Keeping the suite order identical between `--write` (which
// stamps the baseline) and CI's `--smoke --check` keeps that gate fair.
pub const SUITES: [&str; 5] = ["attention", "kernels", "adam", "ssd", "executor"];

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

/// A [`System`] wrapper that counts allocations, so benches can assert
/// that a hot path performs none at steady state.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic increment with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Total heap allocations since process start (monotonic; diff two reads
/// around a region to count its allocations).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Results model
// ---------------------------------------------------------------------

/// One measured number.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Unique name within the suite (encodes variant + problem size).
    pub name: String,
    /// One of `gflops`, `elems_per_s`, `gbps`, `ratio`, `allocs`,
    /// `bytes`.
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

/// One suite's results.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfSuite {
    /// Suite name (`kernels` | `adam` | `ssd`).
    pub suite: String,
    /// Machine-speed score (GFLOP/s of a fixed scalar workload) measured
    /// alongside the entries. The regression check rescales current
    /// values by `baseline.calibration / current.calibration`, so a
    /// throttled or contended box doesn't read as a code regression.
    pub calibration: f64,
    /// Measured entries.
    pub entries: Vec<PerfEntry>,
}

/// Higher-is-better metrics (regression = value dropped); `allocs` and
/// `bytes` are lower-is-better and checked strictly — both count
/// deterministic quantities (heap allocations per call, saved-blob
/// bytes per step), so *any* increase is a code change, not noise.
/// `ratio` is higher-is-better but never calibration-scaled: it divides
/// two wall-clocks measured on the same machine, so machine speed
/// already cancels.
fn is_throughput(metric: &str) -> bool {
    matches!(metric, "gflops" | "elems_per_s" | "gbps" | "ratio")
}

/// Lower-is-better metrics, compared exactly (no calibration, no slack).
fn is_strict_count(metric: &str) -> bool {
    matches!(metric, "allocs" | "bytes")
}

// ---------------------------------------------------------------------
// Timing helpers
// ---------------------------------------------------------------------

/// Minimum allocations observed across single calls of `f` (after one
/// warmup call). The minimum rejects allocations from other threads
/// sharing the process-global counter: if any call sees zero, the hot
/// path itself allocates nothing.
fn min_allocs_per_call(calls: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = u64::MAX;
    for _ in 0..calls.max(1) {
        let before = allocation_count();
        f();
        best = best.min(allocation_count() - before);
    }
    best as f64
}

/// Minimum wall-clock seconds of single calls of `f`, sampling for at
/// least `budget` seconds (and at least three calls) after one warmup
/// call. The minimum over a longer window gets far more chances to land
/// in an un-contended slice of a noisy shared machine than a fixed
/// handful of samples would.
fn time_min_for(budget: f64, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    let mut best = f64::INFINITY;
    let mut calls = 0;
    while calls < 3 || start.elapsed().as_secs_f64() < budget {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
        calls += 1;
    }
    best
}

/// Measures the machine-speed score stored in every BENCH file: GFLOP/s
/// of a fixed scalar matmul, minimum over several runs. Both the
/// baseline writer and the checker run it on their own hardware; the
/// ratio of the two scores cancels CPU-frequency and contention
/// differences out of the regression comparison.
pub fn calibration_score() -> f64 {
    let n = 256;
    let a = fill(n * n, 101);
    let b = fill(n * n, 102);
    let mut c = vec![0.0f32; n * n];
    let secs = time_min_for(0.2, || {
        c.iter_mut().for_each(|x| *x = 0.0);
        for i in 0..n {
            for p in 0..n {
                let aip = a[i * n + p];
                for j in 0..n {
                    c[i * n + j] += aip * b[p * n + j];
                }
            }
        }
        std::hint::black_box(&mut c);
    });
    2.0 * (n as f64).powi(3) / secs / 1e9
}

/// Deterministic pseudo-random fill in [-1, 1).
fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

// ---------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------

/// Runs one suite by name. `smoke` restricts to the reduced sizes CI can
/// afford; the committed baselines are generated without it, so a smoke
/// run compares only its reduced-size entries against the baseline.
pub fn run_suite(suite: &str, smoke: bool) -> Result<PerfSuite, String> {
    let mut result = match suite {
        "kernels" => run_kernels(smoke),
        "attention" => run_attention(smoke),
        "adam" => run_adam(smoke),
        "ssd" => run_ssd(smoke)?,
        "executor" => run_executor(smoke)?,
        other => return Err(format!("unknown suite {other:?} ({})", SUITES.join("|"))),
    };
    result.calibration = calibration_score();
    Ok(result)
}

/// Smoke sizes are a subset of the full ladder, so a smoke run's entry
/// names all exist in the committed full-run baseline.
fn matmul_sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![96, 384]
    } else {
        vec![96, 192, 384, 1024]
    }
}

fn run_kernels(smoke: bool) -> PerfSuite {
    let mut entries = Vec::new();
    for s in matmul_sizes(smoke) {
        let a = Tensor::from_vec(&[s, s], fill(s * s, 1));
        let b = Tensor::from_vec(&[s, s], fill(s * s, 2));
        let flops = 2.0 * (s as f64).powi(3);

        let naive_s = time_min_for(0.3, || {
            std::hint::black_box(ops::naive::matmul(&a, &b));
        });
        entries.push(PerfEntry {
            name: format!("matmul_naive_{s}"),
            metric: "gflops".into(),
            value: flops / naive_s / 1e9,
        });

        // Multi-thread numbers only where the problem amortizes the
        // spawns; tiny sizes measure scheduler noise, not the kernel.
        let thread_counts: &[usize] = if s >= 384 { &[1, 4] } else { &[1] };
        for &threads in thread_counts {
            set_num_threads(threads);
            let tiled_s = time_min_for(0.3, || {
                std::hint::black_box(ops::matmul(&a, &b));
            });
            set_num_threads(1);
            entries.push(PerfEntry {
                name: format!("matmul_tiled_t{threads}_{s}"),
                metric: "gflops".into(),
                value: flops / tiled_s / 1e9,
            });
        }
    }
    // The backward-pass shapes at one mid size: same GEMM core, different
    // packing routes.
    let s = 384;
    let a = Tensor::from_vec(&[s, s], fill(s * s, 3));
    let b = Tensor::from_vec(&[s, s], fill(s * s, 4));
    let flops = 2.0 * (s as f64).powi(3);
    for (name, f) in [
        (
            "matmul_at",
            ops::matmul_at as fn(&Tensor, &Tensor) -> Tensor,
        ),
        ("matmul_bt", ops::matmul_bt),
    ] {
        let secs = time_min_for(0.3, || {
            std::hint::black_box(f(&a, &b));
        });
        entries.push(PerfEntry {
            name: format!("{name}_tiled_t1_{s}"),
            metric: "gflops".into(),
            value: flops / secs / 1e9,
        });
    }
    // Fused f16-dequant GEMM vs decode-then-multiply at the same shape:
    // the fused path converts half-precision B panels during operand
    // packing, so its win is the skipped materialized f32 copy of B.
    let bits: Vec<u16> = fill(s * s, 11)
        .iter()
        .map(|&v| ratel_tensor::f32_to_f16_bits(v))
        .collect();
    let mut out = vec![0.0f32; s * s];
    let fused_s = time_min_for(0.3, || {
        gemm::gemm_f16b(
            s,
            s,
            s,
            a.data(),
            gemm::LayoutA::Normal,
            &bits,
            gemm::LayoutB::Normal,
            &mut out,
        );
        std::hint::black_box(&mut out);
    });
    entries.push(PerfEntry {
        name: format!("gemm_f16b_fused_t1_{s}"),
        metric: "gflops".into(),
        value: flops / fused_s / 1e9,
    });
    let mut bf = vec![0.0f32; s * s];
    let decode_s = time_min_for(0.3, || {
        ratel_tensor::dtype::f16_bits_to_f32_slice(&bits, &mut bf);
        gemm::gemm_tiled(
            s,
            s,
            s,
            a.data(),
            gemm::LayoutA::Normal,
            &bf,
            gemm::LayoutB::Normal,
            &mut out,
        );
        std::hint::black_box(&mut out);
    });
    entries.push(PerfEntry {
        name: format!("gemm_f16b_decode_then_gemm_t1_{s}"),
        metric: "gflops".into(),
        value: flops / decode_s / 1e9,
    });
    PerfSuite {
        suite: "kernels".into(),
        calibration: 0.0,
        entries,
    }
}

fn run_attention(smoke: bool) -> PerfSuite {
    use ratel_tensor::{
        attn_backward_into, attn_backward_naive_into, attn_forward_into, attn_forward_naive_into,
        BlockSaved,
    };

    // One head geometry across the ladder (8 heads of 64 = hidden 512);
    // the sequence length is what moves the streaming-vs-naive gap. The
    // smoke size always runs so its entry names exist in the committed
    // full baseline; the full run adds the long sequences on top.
    let (batch, heads, d) = (1usize, 8usize, 64usize);
    let h = heads * d;
    let sizes: &[usize] = if smoke { &[128] } else { &[128, 512, 1024] };
    let budget = 0.3;
    let mut entries = Vec::new();
    for &s in sizes {
        let qkv = fill(batch * s * 3 * h, 21);
        let dctx = fill(batch * s * h, 22);
        let mut ctx = vec![0.0f32; batch * s * h];
        let mut row_max = vec![0.0f32; batch * heads * s];
        let mut row_lse = vec![0.0f32; batch * heads * s];
        let mut dqkv = vec![0.0f32; qkv.len()];
        // Nominal work unit: the b*heads*s*s attention cells a
        // materialized implementation touches. Both backends share it,
        // so the speedup reads straight off the cells/s pair (the
        // streaming kernel actually skips the masked half — that skipped
        // work *is* part of its advantage).
        let cells = (batch * heads * s * s) as f64;

        let mut fwd_streaming_t1 = f64::INFINITY;
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let secs = time_min_for(budget, || {
                attn_forward_into(
                    &qkv,
                    batch,
                    s,
                    h,
                    heads,
                    &mut ctx,
                    &mut row_max,
                    &mut row_lse,
                );
                std::hint::black_box(&mut ctx);
            });
            set_num_threads(1);
            if threads == 1 {
                fwd_streaming_t1 = secs;
            }
            entries.push(PerfEntry {
                name: format!("attn_fwd_streaming_t{threads}_{s}"),
                metric: "elems_per_s".into(),
                value: cells / secs,
            });
        }
        let fwd_naive = time_min_for(budget, || {
            attn_forward_naive_into(
                &qkv,
                batch,
                s,
                h,
                heads,
                &mut ctx,
                &mut row_max,
                &mut row_lse,
            );
            std::hint::black_box(&mut ctx);
        });
        entries.push(PerfEntry {
            name: format!("attn_fwd_naive_t1_{s}"),
            metric: "elems_per_s".into(),
            value: cells / fwd_naive,
        });
        entries.push(PerfEntry {
            name: format!("attn_fwd_speedup_{s}"),
            metric: "ratio".into(),
            value: fwd_naive / fwd_streaming_t1,
        });

        // Backward: each backend consumes its own forward's saved set,
        // exactly as the layer does at train time.
        attn_forward_into(
            &qkv,
            batch,
            s,
            h,
            heads,
            &mut ctx,
            &mut row_max,
            &mut row_lse,
        );
        let mut bwd_streaming_t1 = f64::INFINITY;
        for threads in [1usize, 4] {
            set_num_threads(threads);
            let secs = time_min_for(budget, || {
                attn_backward_into(
                    &qkv, &ctx, &row_max, &row_lse, &dctx, batch, s, h, heads, &mut dqkv,
                );
                std::hint::black_box(&mut dqkv);
            });
            set_num_threads(1);
            if threads == 1 {
                bwd_streaming_t1 = secs;
            }
            entries.push(PerfEntry {
                name: format!("attn_bwd_streaming_t{threads}_{s}"),
                metric: "elems_per_s".into(),
                value: cells / secs,
            });
        }
        attn_forward_naive_into(
            &qkv,
            batch,
            s,
            h,
            heads,
            &mut ctx,
            &mut row_max,
            &mut row_lse,
        );
        let bwd_naive = time_min_for(budget, || {
            attn_backward_naive_into(
                &qkv, &ctx, &row_max, &row_lse, &dctx, batch, s, h, heads, &mut dqkv,
            );
            std::hint::black_box(&mut dqkv);
        });
        entries.push(PerfEntry {
            name: format!("attn_bwd_naive_t1_{s}"),
            metric: "elems_per_s".into(),
            value: cells / bwd_naive,
        });
        entries.push(PerfEntry {
            name: format!("attn_bwd_speedup_{s}"),
            metric: "ratio".into(),
            value: bwd_naive / bwd_streaming_t1,
        });

        // The A16 blob of one transformer block at this shape — the
        // bytes a saved-activation swap actually moves per step. This is
        // arithmetic, not a measurement: any growth is a code change
        // (e.g. something re-materializing the [s, s] probabilities) and
        // fails the check outright.
        entries.push(PerfEntry {
            name: format!("block_saved_bytes_{s}"),
            metric: "bytes".into(),
            value: (2 * BlockSaved::element_count_for(batch, s, h, heads)) as f64,
        });
    }

    // Steady-state allocation counts: both streaming kernels run
    // entirely out of the scratch pool once warmed, at any thread count
    // — asserted here at the serial setting the counter can attribute.
    let s = 128;
    let qkv = fill(batch * s * 3 * h, 23);
    let dctx = fill(batch * s * h, 24);
    let mut ctx = vec![0.0f32; batch * s * h];
    let mut row_max = vec![0.0f32; batch * heads * s];
    let mut row_lse = vec![0.0f32; batch * heads * s];
    let mut dqkv = vec![0.0f32; qkv.len()];
    set_num_threads(1);
    entries.push(PerfEntry {
        name: "attn_fwd_streaming_allocs_per_call".into(),
        metric: "allocs".into(),
        value: min_allocs_per_call(10, || {
            attn_forward_into(
                &qkv,
                batch,
                s,
                h,
                heads,
                &mut ctx,
                &mut row_max,
                &mut row_lse,
            )
        }),
    });
    entries.push(PerfEntry {
        name: "attn_bwd_streaming_allocs_per_call".into(),
        metric: "allocs".into(),
        value: min_allocs_per_call(10, || {
            attn_backward_into(
                &qkv, &ctx, &row_max, &row_lse, &dctx, batch, s, h, heads, &mut dqkv,
            )
        }),
    });

    PerfSuite {
        suite: "attention".into(),
        calibration: 0.0,
        entries,
    }
}

fn run_adam(smoke: bool) -> PerfSuite {
    // The smoke size always runs so its entry names exist in the full
    // baseline; the full run adds the large size on top.
    let sizes: &[usize] = if smoke {
        &[200_000]
    } else {
        &[200_000, 4_000_000]
    };
    let hp = AdamParams::default();
    let mut entries = Vec::new();
    for &n in sizes {
        let grads = fill(n, 5);
        for threads in [1usize, 4] {
            let mut adam = Adam::new(n);
            let mut params = fill(n, 6);
            set_num_threads(threads);
            let secs = time_min_for(0.3, || {
                adam.step(&mut params, &grads, &hp);
            });
            set_num_threads(1);
            entries.push(PerfEntry {
                name: format!("adam_step_t{threads}_{n}"),
                metric: "elems_per_s".into(),
                value: n as f64 / secs,
            });
        }
    }

    // Steady-state allocation counts: the bugfix contract is that these
    // hot paths allocate nothing per call once warmed up. The Adam size
    // sits below the parallel threshold so the step is serial (no scoped
    // spawns) whatever the global thread count is.
    let m = 4096;
    let mut adam = Adam::new(m);
    let mut params = fill(m, 7);
    let grads_s = fill(m, 8);
    entries.push(PerfEntry {
        name: "adam_step_serial_allocs_per_call".into(),
        metric: "allocs".into(),
        value: min_allocs_per_call(10, || adam.step(&mut params, &grads_s, &hp)),
    });

    let mut x = Tensor::from_vec(&[8, 512], fill(m, 9));
    let bias = Tensor::from_vec(&[512], fill(512, 10));
    entries.push(PerfEntry {
        name: "add_bias_allocs_per_call".into(),
        metric: "allocs".into(),
        value: min_allocs_per_call(10, || ops::add_bias(&mut x, &bias)),
    });

    // A flat state round-trip through a reused buffer is also free.
    let mut flat = Vec::new();
    let t = adam.t;
    entries.push(PerfEntry {
        name: "adam_flat_roundtrip_allocs_per_call".into(),
        metric: "allocs".into(),
        value: min_allocs_per_call(10, || {
            adam.write_flat_into(&mut flat);
            adam.load_flat(&flat, t);
        }),
    });

    PerfSuite {
        suite: "adam".into(),
        calibration: 0.0,
        entries,
    }
}

fn run_ssd(smoke: bool) -> Result<PerfSuite, String> {
    // The smoke config always runs so its entry names exist in the full
    // baseline; the full run adds a larger config on top.
    let configs: &[(usize, usize, usize)] = if smoke {
        &[(32, 256 * 1024, 8)]
    } else {
        &[(32, 256 * 1024, 8), (64, 1024 * 1024, 4)]
    };
    let store = TieredStore::new(TierConfig::unbounded_temp()).map_err(|e| e.to_string())?;
    let mut entries = Vec::new();

    for &(blobs, blob_len, rounds) in configs {
        let total = (blobs * blob_len) as f64;
        let payload = vec![0xA5u8; blob_len];
        let mut best_solo = f64::INFINITY;
        let mut best_batch = f64::INFINITY;
        let mut best_read = f64::INFINITY;

        // Per-blob route: one random write per blob.
        let solo = |round: usize| -> Result<f64, String> {
            let prepared: Vec<(String, Vec<u8>)> = (0..blobs)
                .map(|i| (format!("r{round}/solo/{i}"), payload.clone()))
                .collect();
            let t0 = Instant::now();
            for (key, bytes) in prepared {
                store
                    .put(&key, Tier::Ssd, bytes)
                    .map_err(|e| e.to_string())?;
            }
            Ok(t0.elapsed().as_secs_f64())
        };
        // Batched route: all blobs coalesced into one sequential
        // segment.
        let batched = |round: usize| -> Result<f64, String> {
            let batch: Vec<(String, Vec<u8>)> = (0..blobs)
                .map(|i| (format!("r{round}/batch/{i}"), payload.clone()))
                .collect();
            let t0 = Instant::now();
            store
                .put_batch(Tier::Ssd, batch)
                .map_err(|e| e.to_string())?;
            Ok(t0.elapsed().as_secs_f64())
        };

        // Best-of-N rounds on fresh keys each time, so a one-off
        // filesystem hiccup can't poison the committed baseline. Route
        // order alternates per round: whichever runs second inherits the
        // writeback pressure of the first's dirty pages, so each route
        // gets at least one round at the front.
        for round in 0..rounds {
            if round % 2 == 0 {
                best_solo = best_solo.min(solo(round)?);
                best_batch = best_batch.min(batched(round)?);
            } else {
                best_batch = best_batch.min(batched(round)?);
                best_solo = best_solo.min(solo(round)?);
            }

            // Read-back of the segment-resident blobs.
            let t0 = Instant::now();
            for i in 0..blobs {
                std::hint::black_box(
                    store
                        .read(&format!("r{round}/batch/{i}"))
                        .map_err(|e| e.to_string())?,
                );
            }
            best_read = best_read.min(t0.elapsed().as_secs_f64());

            // Untimed cleanup so rounds don't accumulate disk usage.
            for i in 0..blobs {
                store
                    .remove(&format!("r{round}/solo/{i}"))
                    .map_err(|e| e.to_string())?;
                store
                    .remove(&format!("r{round}/batch/{i}"))
                    .map_err(|e| e.to_string())?;
            }
        }

        entries.push(PerfEntry {
            name: format!("ssd_put_per_blob_{blobs}x{blob_len}"),
            metric: "gbps".into(),
            value: total / best_solo / 1e9,
        });
        entries.push(PerfEntry {
            name: format!("ssd_put_batched_{blobs}x{blob_len}"),
            metric: "gbps".into(),
            value: total / best_batch / 1e9,
        });
        entries.push(PerfEntry {
            name: format!("ssd_read_{blobs}x{blob_len}"),
            metric: "gbps".into(),
            value: total / best_read / 1e9,
        });
    }

    Ok(PerfSuite {
        suite: "ssd".into(),
        calibration: 0.0,
        entries,
    })
}

fn run_executor(smoke: bool) -> Result<PerfSuite, String> {
    use ratel::engine::data::random_batch;
    use ratel::engine::executor::TaskBreakdown;
    use ratel::engine::lr::LrSchedule;
    use ratel::engine::scaler::ScalePolicy;
    use ratel::engine::{
        ActDecision, EngineConfig, ExecutionOptions, ExecutorOptions, RatelEngine,
    };
    use ratel_sim::ResourceClass;
    use ratel_storage::Route;
    use ratel_tensor::GptConfig;

    // Small enough that compute is cheap, routes throttled hard enough
    // that state I/O takes real time: whichever mode overlaps transfers
    // with compute best wins, which is exactly what this suite tracks.
    let model = GptConfig {
        vocab: 128,
        seq: 32,
        hidden: 64,
        heads: 4,
        layers: 4,
        batch: 4,
    };
    let steps = if smoke { 3u64 } else { 6 };
    let mk = |execution: ExecutionOptions| -> Result<RatelEngine, String> {
        let engine = RatelEngine::new(EngineConfig {
            model,
            seed: 55,
            adam: AdamParams::default(),
            act_decisions: vec![ActDecision::SwapToHost; model.layers],
            gpu_capacity: None,
            host_capacity: None,
            execution,
            loss_scale: ScalePolicy::None,
            grad_clip: None,
            lr_schedule: LrSchedule::Constant,
            dropout: None,
            frozen_layers: Vec::new(),
        })
        .map_err(|e| e.to_string())?;
        engine.set_route_throttle(Route::SsdToHost, Some(20e6));
        engine.set_route_throttle(Route::HostToSsd, Some(20e6));
        Ok(engine)
    };
    let (tokens, targets) = random_batch(&model, 9);
    let time_mode =
        |execution: ExecutionOptions| -> Result<(f64, f32, Option<TaskBreakdown>), String> {
            let mut engine = mk(execution)?;
            // Warm-up step: first-touch staging and file creation.
            engine
                .train_step(&tokens, &targets)
                .map_err(|e| e.to_string())?;
            let t0 = Instant::now();
            let mut loss = 0.0;
            let mut tasks = None;
            for _ in 0..steps {
                let stats = engine
                    .train_step(&tokens, &targets)
                    .map_err(|e| e.to_string())?;
                loss = stats.loss;
                tasks = stats.tasks;
            }
            Ok((steps as f64 / t0.elapsed().as_secs_f64(), loss, tasks))
        };

    let (exec_sps, exec_loss, exec_tasks) =
        time_mode(ExecutionOptions::Executor(ExecutorOptions::default()))?;
    let (overlap_sps, overlap_loss, _) = time_mode(ExecutionOptions::LegacyOverlapped {
        prefetch_params: false,
    })?;
    let (separate_sps, separate_loss, _) = time_mode(ExecutionOptions::LegacySeparateStage {
        prefetch_params: false,
    })?;

    // The ranking is only meaningful if every mode computed the same
    // step; a numeric divergence here is a bug, not a perf result.
    if exec_loss != overlap_loss || exec_loss != separate_loss {
        return Err(format!(
            "modes diverged: executor {exec_loss} vs overlapped {overlap_loss} \
             vs separate {separate_loss}"
        ));
    }
    let tasks = exec_tasks.ok_or("executor mode reported no task breakdown")?;

    let mut entries = vec![
        PerfEntry {
            name: "engine_steps_executor".into(),
            metric: "elems_per_s".into(),
            value: exec_sps,
        },
        PerfEntry {
            name: "engine_steps_legacy_overlapped".into(),
            metric: "elems_per_s".into(),
            value: overlap_sps,
        },
        PerfEntry {
            name: "engine_steps_legacy_separate".into(),
            metric: "elems_per_s".into(),
            value: separate_sps,
        },
        PerfEntry {
            name: "executor_over_legacy_overlapped".into(),
            metric: "ratio".into(),
            value: exec_sps / overlap_sps,
        },
        PerfEntry {
            name: "executor_over_legacy_separate".into(),
            metric: "ratio".into(),
            value: exec_sps / separate_sps,
        },
    ];
    // Per-worker utilisation of the bottleneck pool: busy seconds over
    // wall clock times pool width. The throttle puts the whole step on
    // the SSD array, so this is the paper's "keep the hop busy" claim
    // in number form; a scheduling regression shows up here before it
    // shows up in steps/s. (The PCIe pools are near-idle by design in
    // this scenario — their utilisation would only measure noise.)
    let util = tasks.pool(ResourceClass::SsdArray).map_or(0.0, |p| {
        p.busy_seconds / (tasks.wall_seconds * p.workers.max(1) as f64)
    });
    entries.push(PerfEntry {
        name: "executor_util_ssd".into(),
        metric: "ratio".into(),
        value: util,
    });
    Ok(PerfSuite {
        suite: "executor".into(),
        calibration: 0.0,
        entries,
    })
}

// ---------------------------------------------------------------------
// JSON emit / parse / check
// ---------------------------------------------------------------------

/// Serializes a suite to the committed BENCH file format.
pub fn to_json(suite: &PerfSuite) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!("  \"suite\": \"{}\",\n", suite.suite));
    s.push_str(&format!("  \"calibration\": {:.6},\n", suite.calibration));
    s.push_str("  \"entries\": [\n");
    for (i, e) in suite.entries.iter().enumerate() {
        let comma = if i + 1 < suite.entries.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"metric\": \"{}\", \"value\": {:.6} }}{comma}\n",
            e.name, e.metric, e.value
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parses and schema-validates a BENCH file.
pub fn parse_suite(text: &str) -> Result<PerfSuite, String> {
    let v = json::parse(text)?;
    let obj = v.as_object().ok_or("top level must be an object")?;
    let schema = json::get_str(obj, "schema")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let suite = json::get_str(obj, "suite")?.to_string();
    if !SUITES.contains(&suite.as_str()) {
        return Err(format!("unknown suite {suite:?}"));
    }
    let calibration = json::get(obj, "calibration")?
        .as_number()
        .ok_or("\"calibration\" must be a number")?;
    if !calibration.is_finite() || calibration <= 0.0 {
        return Err(format!("calibration out of range: {calibration}"));
    }
    let entries_v = json::get(obj, "entries")?
        .as_array()
        .ok_or("\"entries\" must be an array")?;
    let mut entries = Vec::new();
    for (i, ev) in entries_v.iter().enumerate() {
        let eo = ev
            .as_object()
            .ok_or_else(|| format!("entries[{i}] must be an object"))?;
        let name = json::get_str(eo, "name")?.to_string();
        let metric = json::get_str(eo, "metric")?.to_string();
        if !is_throughput(&metric) && !is_strict_count(&metric) {
            return Err(format!("entries[{i}]: unknown metric {metric:?}"));
        }
        let value = json::get(eo, "value")?
            .as_number()
            .ok_or_else(|| format!("entries[{i}].value must be a number"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("entries[{i}].value out of range: {value}"));
        }
        if entries.iter().any(|e: &PerfEntry| e.name == name) {
            return Err(format!("duplicate entry name {name:?}"));
        }
        entries.push(PerfEntry {
            name,
            metric,
            value,
        });
    }
    if entries.is_empty() {
        return Err("entries must not be empty".into());
    }
    Ok(PerfSuite {
        suite,
        calibration,
        entries,
    })
}

/// Compares `current` against `baseline`; returns one line per failure.
/// Throughput values are first rescaled by the calibration-score ratio
/// (clamped to [0.25, 4]) so a faster or slower machine than the one
/// that wrote the baseline is factored out; the rescaled value then
/// fails below `(1 - REGRESSION_THRESHOLD) * baseline`. `allocs` and
/// `bytes` entries fail on any increase, unscaled. Entries missing on
/// either side are skipped (smoke runs measure a subset of the
/// committed baseline).
pub fn check_regressions(current: &PerfSuite, baseline: &PerfSuite) -> Vec<String> {
    let scale = if current.calibration > 0.0 && baseline.calibration > 0.0 {
        (baseline.calibration / current.calibration).clamp(0.25, 4.0)
    } else {
        1.0
    };
    let mut failures = Vec::new();
    for cur in &current.entries {
        let Some(base) = baseline.entries.iter().find(|b| b.name == cur.name) else {
            continue;
        };
        if base.metric != cur.metric {
            failures.push(format!(
                "{}: metric changed {} -> {}",
                cur.name, base.metric, cur.metric
            ));
            continue;
        }
        if is_throughput(&cur.metric) {
            // Ratios are same-machine quotients; rescaling them by the
            // calibration ratio would *introduce* a machine dependence.
            let adjusted = if cur.metric == "ratio" {
                cur.value
            } else {
                cur.value * scale
            };
            let floor = base.value * (1.0 - REGRESSION_THRESHOLD);
            if adjusted < floor {
                failures.push(format!(
                    "{}: {:.3} {} ({:.3} machine-adjusted) is {:.0}% below baseline {:.3}",
                    cur.name,
                    cur.value,
                    cur.metric,
                    adjusted,
                    (1.0 - adjusted / base.value) * 100.0,
                    base.value
                ));
            }
        } else if cur.value > base.value {
            failures.push(format!(
                "{}: {} {}, baseline {}",
                cur.name, cur.value, cur.metric, base.value
            ));
        }
    }
    failures
}

/// Human-readable table of a suite's entries.
pub fn render(suite: &PerfSuite) -> String {
    let mut s = format!("suite: {}\n", suite.suite);
    let width = suite
        .entries
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0);
    for e in &suite.entries {
        s.push_str(&format!(
            "  {:width$}  {:>14.3} {}\n",
            e.name, e.value, e.metric
        ));
    }
    s
}

/// Minimal JSON parser — just enough for the BENCH schema (objects,
/// arrays, strings without escapes beyond `\"`/`\\`, numbers, literals).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (f64 precision).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, insertion-ordered.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Looks up a key in an object.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    }

    /// Looks up a key and requires a string value.
    pub fn get_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
        get(obj, key)?
            .as_str()
            .ok_or_else(|| format!("{key:?} must be a string"))
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            other => {
                                return Err(format!(
                                    "unsupported escape {:?} at byte {}",
                                    other.map(|c| c as char),
                                    self.pos
                                ))
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multi-byte safe).
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                        let ch = s.chars().next().unwrap();
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_suite() -> PerfSuite {
        PerfSuite {
            suite: "kernels".into(),
            calibration: 1.0,
            entries: vec![
                PerfEntry {
                    name: "matmul_naive_96".into(),
                    metric: "gflops".into(),
                    value: 1.25,
                },
                PerfEntry {
                    name: "matmul_tiled_t1_96".into(),
                    metric: "gflops".into(),
                    value: 6.5,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_emit_and_parse() {
        let suite = sample_suite();
        let parsed = parse_suite(&to_json(&suite)).unwrap();
        assert_eq!(parsed.suite, suite.suite);
        assert_eq!(parsed.entries.len(), suite.entries.len());
        for (a, b) in parsed.entries.iter().zip(&suite.entries) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.metric, b.metric);
            assert!((a.value - b.value).abs() < 1e-9);
        }
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(parse_suite("{}").is_err());
        assert!(parse_suite("[1,2]").is_err());
        let wrong_schema = to_json(&sample_suite()).replace(SCHEMA, "bogus/9");
        assert!(parse_suite(&wrong_schema).is_err());
        let bad_metric = to_json(&sample_suite()).replace("gflops", "parsecs");
        assert!(parse_suite(&bad_metric).is_err());
        let dup = to_json(&sample_suite()).replace("matmul_naive_96", "matmul_tiled_t1_96");
        assert!(parse_suite(&dup).is_err());
    }

    #[test]
    fn regression_check_flags_slowdowns_and_alloc_growth() {
        let mut base = sample_suite();
        base.entries.push(PerfEntry {
            name: "add_bias_allocs_per_call".into(),
            metric: "allocs".into(),
            value: 0.0,
        });
        let mut current = base.clone();
        assert!(check_regressions(&current, &base).is_empty());
        // 10% down: within the 20% budget.
        current.entries[0].value = base.entries[0].value * 0.9;
        assert!(check_regressions(&current, &base).is_empty());
        // 30% down: flagged.
        current.entries[0].value = base.entries[0].value * 0.7;
        assert_eq!(check_regressions(&current, &base).len(), 1);
        // Any allocation growth is flagged.
        current.entries[0].value = base.entries[0].value;
        current.entries[2].value = 1.0;
        assert_eq!(check_regressions(&current, &base).len(), 1);
        // Entries only in the baseline (full sizes during a smoke run)
        // are ignored.
        current.entries[2].value = 0.0;
        current.entries.remove(1);
        assert!(check_regressions(&current, &base).is_empty());
    }

    #[test]
    fn calibration_ratio_cancels_machine_speed() {
        let base = sample_suite();
        // A box running at 40% of the baseline machine's speed: every
        // throughput number drops proportionally, including the
        // calibration score. Machine-adjusted, nothing regressed.
        let mut throttled = base.clone();
        throttled.calibration *= 0.4;
        for e in &mut throttled.entries {
            e.value *= 0.4;
        }
        assert!(check_regressions(&throttled, &base).is_empty());
        // A genuine 30% code regression on the same throttled box is
        // still flagged: the kernel dropped further than the machine.
        throttled.entries[1].value *= 0.7;
        assert_eq!(check_regressions(&throttled, &base).len(), 1);
        // The scale is clamped, so an absurd calibration ratio cannot
        // wave through an arbitrarily slow run.
        let mut implausible = base.clone();
        implausible.calibration *= 0.01;
        for e in &mut implausible.entries {
            e.value *= 0.01;
        }
        assert!(!check_regressions(&implausible, &base).is_empty());
    }

    #[test]
    fn counting_allocator_sees_allocations() {
        let before = allocation_count();
        let v: Vec<u64> = std::hint::black_box((0..100).collect());
        assert!(allocation_count() > before);
        drop(v);
    }

    #[test]
    fn smoke_suites_produce_valid_schema() {
        for suite in ["attention", "adam", "ssd"] {
            let result = run_suite(suite, true).unwrap();
            let parsed = parse_suite(&to_json(&result)).unwrap();
            assert_eq!(parsed.suite, suite);
            assert!(!parsed.entries.is_empty());
        }
    }

    #[test]
    fn hot_paths_allocate_nothing_at_steady_state() {
        // The satellite contract, asserted directly: add_bias and the
        // serial Adam step perform zero allocations per call.
        let adam_suite = run_suite("adam", true).unwrap();
        for name in [
            "adam_step_serial_allocs_per_call",
            "add_bias_allocs_per_call",
            "adam_flat_roundtrip_allocs_per_call",
        ] {
            let e = adam_suite
                .entries
                .iter()
                .find(|e| e.name == name)
                .expect(name);
            assert_eq!(e.value, 0.0, "{name} allocates at steady state");
        }
        // The streaming attention kernels run out of the scratch pool
        // once warmed: a full forward + backward step allocates nothing.
        let attn_suite = run_suite("attention", true).unwrap();
        for name in [
            "attn_fwd_streaming_allocs_per_call",
            "attn_bwd_streaming_allocs_per_call",
        ] {
            let e = attn_suite
                .entries
                .iter()
                .find(|e| e.name == name)
                .expect(name);
            assert_eq!(e.value, 0.0, "{name} allocates at steady state");
        }
    }
}
