//! `ratel-bench faults`: chaos smoke test for the storage fault plane.
//!
//! Runs the same short fine-tuning job twice through [`Ratel`]'s typed
//! trainer: once fault-free (with an empty [`FaultPlan`] installed purely
//! as an SSD op-counter), then again with a seeded plan that injects
//! transient SSD I/O faults scattered across the observed op window. The
//! store's bounded retry-with-backoff must absorb every injected fault,
//! so the chaos run's loss history has to be **bitwise identical** to the
//! baseline — faults may cost time, never correctness. The command exits
//! nonzero if any loss diverges, if fewer faults were injected than
//! requested, or if the retry telemetry does not account for them.

use std::sync::Arc;

use ratel::api::Ratel;
use ratel::engine::data::learnable_batch;
use ratel::{Batch, RatelTrainer};
use ratel_storage::fault::FaultPlan;
use ratel_storage::telemetry::FaultStats;
use ratel_tensor::GptConfig;

/// What to chaos-test: one trainer configuration and a fault budget.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Model shape name (`tiny` or `small`), same ladder as `validate`.
    pub model: String,
    /// Training steps per run.
    pub steps: usize,
    /// Transient SSD faults to scatter across the chaos run.
    pub faults: usize,
    /// Seed for the fault-index PRNG (and reported for reproduction).
    pub seed: u64,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            model: "tiny".into(),
            steps: 10,
            faults: 5,
            seed: 7,
        }
    }
}

/// Everything one chaos run produced.
#[derive(Debug, Clone)]
pub struct FaultsReport {
    /// SSD ops the fault-free baseline issued (the injection window).
    pub baseline_ops: u64,
    /// Per-step losses of the fault-free run.
    pub baseline_losses: Vec<f32>,
    /// Per-step losses of the chaos run.
    pub chaos_losses: Vec<f32>,
    /// Faults actually injected (ops may repeat an index post-retry).
    pub injected: usize,
    /// The chaos store's retry/give-up/spill counters.
    pub stats: FaultStats,
}

impl FaultsReport {
    /// Steps whose loss bits differ between the two runs.
    pub fn diverged_steps(&self) -> Vec<usize> {
        self.baseline_losses
            .iter()
            .zip(&self.chaos_losses)
            .enumerate()
            .filter(|(_, (a, b))| a.to_bits() != b.to_bits())
            .map(|(i, _)| i)
            .collect()
    }

    /// Human-readable reasons this run fails the smoke test.
    pub fn failures(&self, cfg: &FaultsConfig) -> Vec<String> {
        let mut out = Vec::new();
        if self.baseline_losses.len() != self.chaos_losses.len() {
            out.push(format!(
                "step counts differ: baseline {} vs chaos {}",
                self.baseline_losses.len(),
                self.chaos_losses.len()
            ));
        }
        let diverged = self.diverged_steps();
        if !diverged.is_empty() {
            out.push(format!(
                "loss diverged at step(s) {:?} — faults must not change results",
                diverged
            ));
        }
        if self.injected < cfg.faults {
            out.push(format!(
                "only {} of {} requested faults were injected (window {} ops)",
                self.injected, cfg.faults, self.baseline_ops
            ));
        }
        if (self.stats.retries as usize) < self.injected {
            out.push(format!(
                "telemetry counted {} retries for {} injected faults",
                self.stats.retries, self.injected
            ));
        }
        if self.stats.give_ups > 0 {
            out.push(format!(
                "{} operation(s) exhausted the retry budget on transient faults",
                self.stats.give_ups
            ));
        }
        out
    }
}

/// Resolves a faults model name to an executable shape.
pub fn faults_model(name: &str) -> Option<GptConfig> {
    crate::validate::validate_model(name)
}

/// Builds one trainer with `plan` installed, identical otherwise.
fn build_trainer(model: GptConfig, plan: Arc<FaultPlan>) -> Result<RatelTrainer, String> {
    Ratel::init(model)
        .seed(42)
        .learning_rate(1e-3)
        .fault_plan(plan)
        .build()
        .map_err(|e| format!("trainer build: {e}"))
}

/// Trains `steps` deterministic steps, returning per-step losses.
fn train(trainer: &mut RatelTrainer, model: &GptConfig, steps: usize) -> Result<Vec<f32>, String> {
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let (tokens, targets) = learnable_batch(model, step as u64);
        let batch = Batch::new(model, &tokens, &targets).map_err(|e| format!("batch: {e}"))?;
        let stats = trainer
            .step(batch)
            .map_err(|e| format!("step {step}: {e}"))?;
        losses.push(stats.loss);
    }
    Ok(losses)
}

/// Runs the full chaos smoke: baseline, seeded chaos run, comparison.
pub fn run(cfg: &FaultsConfig) -> Result<FaultsReport, String> {
    let model = faults_model(&cfg.model).ok_or_else(|| format!("unknown model {:?}", cfg.model))?;
    let steps = cfg.steps.max(1);

    // Baseline: an empty plan faults nothing but counts every SSD op,
    // giving the exact op window the seeded plan scatters faults over.
    let counter = Arc::new(FaultPlan::new());
    let mut baseline = build_trainer(model, Arc::clone(&counter))?;
    let baseline_losses = train(&mut baseline, &model, steps)?;
    let baseline_ops = counter.ops_seen();
    if baseline_ops == 0 {
        return Err("baseline issued no SSD ops — nothing to fault".into());
    }

    // Chaos: same job, transient faults scattered across that window.
    let plan = Arc::new(FaultPlan::seeded_transient(
        cfg.seed,
        cfg.faults,
        baseline_ops,
    ));
    let mut chaos = build_trainer(model, Arc::clone(&plan))?;
    let chaos_losses = train(&mut chaos, &model, steps)?;
    let stats = chaos.engine().store().telemetry().fault_stats();

    Ok(FaultsReport {
        baseline_ops,
        baseline_losses,
        chaos_losses,
        injected: plan.injected_count(),
        stats,
    })
}

/// Renders the chaos report as aligned text.
pub fn render(cfg: &FaultsConfig, report: &FaultsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fault-injection smoke: model={} steps={} faults={} seed={}\n\n",
        cfg.model, cfg.steps, cfg.faults, cfg.seed
    ));
    out.push_str(&format!(
        "baseline: {} SSD ops, final loss {:.6}\n",
        report.baseline_ops,
        report.baseline_losses.last().copied().unwrap_or(f32::NAN)
    ));
    out.push_str(&format!(
        "chaos:    {} transient fault(s) injected, {} retried, {} gave up, final loss {:.6}\n",
        report.injected,
        report.stats.retries,
        report.stats.give_ups,
        report.chaos_losses.last().copied().unwrap_or(f32::NAN)
    ));
    let diverged = report.diverged_steps();
    if diverged.is_empty() {
        out.push_str(&format!(
            "loss history: bitwise identical across all {} steps\n",
            report.baseline_losses.len()
        ));
    } else {
        out.push_str(&format!("loss history: DIVERGED at steps {diverged:?}\n"));
        for i in &diverged {
            out.push_str(&format!(
                "  step {i}: baseline {:.9} vs chaos {:.9}\n",
                report.baseline_losses[*i], report.chaos_losses[*i]
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_model_is_rejected() {
        let cfg = FaultsConfig {
            model: "100B".into(),
            ..FaultsConfig::default()
        };
        assert!(run(&cfg).is_err());
        assert!(faults_model("tiny").is_some());
    }

    #[test]
    fn chaos_smoke_passes_on_the_tiny_model() {
        let cfg = FaultsConfig {
            steps: 3,
            faults: 4,
            ..FaultsConfig::default()
        };
        let report = run(&cfg).unwrap();
        let failures = report.failures(&cfg);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(report.injected >= 4, "{report:?}");
        assert!(report.stats.retries >= report.injected as u64);
    }
}
