//! Minimal aligned-table rendering and CSV export (hand-rolled to stay
//! inside the approved dependency set).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rectangular table with a title, column headers, and string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (figure/table id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded when rendered.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |row: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out);
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Writes the table as CSV to `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        fs::write(dir.join(format!("{name}.csv")), out)
    }
}

/// Formats a float with `digits` decimals.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a,b"]);
        t.row(vec!["v\"q".into()]);
        let dir = std::env::temp_dir().join(format!("ratel-csv-{}", std::process::id()));
        t.write_csv(&dir, "t").unwrap();
        let s = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert!(s.starts_with("\"a,b\""));
        assert!(s.contains("\"v\"\"q\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fnum_rounds() {
        assert_eq!(fnum(1.2345, 2), "1.23");
    }
}
