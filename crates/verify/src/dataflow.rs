//! Dataflow / version analysis.
//!
//! Every annotated read of a blob version must be *dominated* by the
//! write that produced it — a path of dependency edges must force the
//! producer to complete before the consumer starts, in **every** linear
//! extension of the DAG, not just the one the simulator happens to pick.
//! For persistent blobs (fp16 parameters on their home tier, P32+OS32
//! master state) the pass additionally checks the write-after-read
//! hazard: producing version `v+1` physically overwrites version `v`, so
//! every reader of `v` must be ordered before the `v+1` writer.
//!
//! This is the static form of the paper's §IV-C claim: active gradient
//! offloading introduces *no parameter staleness* because the backward
//! pass re-fetches parameters only after the optimizer's write-back, and
//! the optimizer consumes this iteration's gradient, not a stale one.

use std::collections::HashMap;

use ratel_sim::{BlobKind, TaskGraph, TaskId, VersionedBlob};

use crate::finding::{task_label, Finding, Rule};
use crate::reach::{witness_path, Reachability};

/// Maps a read-after-write violation to the paper invariant it breaks:
/// parameter/gradient state maps to §IV-C staleness, transient data
/// (activations, staging buffers, hidden state) to use-before-fetch.
fn raw_rule(kind: BlobKind) -> Rule {
    match kind {
        BlobKind::Param16 | BlobKind::Master | BlobKind::Grad | BlobKind::GradReduced => {
            Rule::Staleness
        }
        _ => Rule::UseBeforeFetch,
    }
}

/// Runs the dataflow pass. Returns findings plus the number of distinct
/// blob versions seen.
pub fn check(graph: &TaskGraph, reach: &Reachability) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();

    // Producer index: (blob, version) -> writer task.
    let mut producers: HashMap<VersionedBlob, TaskId> = HashMap::new();
    let mut versions: HashMap<VersionedBlob, ()> = HashMap::new();
    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        for w in &meta.writes {
            versions.insert(*w, ());
            if let Some(prev) = producers.insert(*w, t) {
                findings.push(Finding {
                    rule: Rule::DuplicateProducer,
                    task: t,
                    label: task_label(graph, t),
                    blob: Some(w.to_string()),
                    detail: format!("both this task and `{}` write {w}", task_label(graph, prev)),
                    witness: Vec::new(),
                    suggestion: "bump the version counter between writes so each version \
                                 has exactly one producer"
                        .into(),
                });
            }
        }
        for r in &meta.reads {
            versions.insert(*r, ());
        }
    }

    // Read-after-write: every read dominated by its producer.
    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        for r in &meta.reads {
            match producers.get(r) {
                None => {
                    if r.version != 0 {
                        findings.push(Finding {
                            rule: raw_rule(r.key.kind),
                            task: t,
                            label: task_label(graph, t),
                            blob: Some(r.to_string()),
                            detail: format!("reads {r} but no task produces that version"),
                            witness: Vec::new(),
                            suggestion: "add the producing task, or read version 0 if the \
                                         initial state is intended"
                                .into(),
                        });
                    }
                }
                Some(&p) => {
                    if !reach.reaches(p, t) {
                        findings.push(Finding {
                            rule: raw_rule(r.key.kind),
                            task: t,
                            label: task_label(graph, t),
                            blob: Some(r.to_string()),
                            detail: format!(
                                "reads {r} but is not ordered after its producer `{}` — \
                                 the read may observe version {}",
                                task_label(graph, p),
                                r.version.saturating_sub(1),
                            ),
                            witness: Vec::new(),
                            suggestion: format!(
                                "add a dependency path from `{}` to `{}`",
                                task_label(graph, p),
                                task_label(graph, t)
                            ),
                        });
                    }
                }
            }
        }
    }

    // Write-after-read on persistent blobs: version v+1 clobbers v in
    // place, so each reader of v must complete before the v+1 write.
    let mut readers: HashMap<VersionedBlob, Vec<TaskId>> = HashMap::new();
    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        for r in &meta.reads {
            if r.key.kind.is_persistent() {
                readers.entry(*r).or_default().push(t);
            }
        }
    }
    for (&wv, &w) in producers.iter() {
        if !wv.key.kind.is_persistent() || wv.version == 0 {
            continue;
        }
        let prev = VersionedBlob {
            key: wv.key,
            version: wv.version - 1,
        };
        for &r in readers.get(&prev).into_iter().flatten() {
            // A read-modify-write task (e.g. an in-place optimizer step
            // reading master@v and writing master@v+1) is trivially safe.
            if r == w {
                continue;
            }
            if !reach.reaches(r, w) {
                let witness = if reach.reaches(w, r) {
                    witness_path(graph, reach, w, r)
                        .iter()
                        .map(|t| task_label(graph, *t))
                        .collect()
                } else {
                    Vec::new()
                };
                findings.push(Finding {
                    rule: Rule::WriteAfterRead,
                    task: w,
                    label: task_label(graph, w),
                    blob: Some(wv.to_string()),
                    detail: format!(
                        "writes {wv} in place, but `{}` reads {prev} and is not ordered \
                         before the write",
                        task_label(graph, r)
                    ),
                    witness,
                    suggestion: format!(
                        "add a dependency path from `{}` to `{}` so the read drains \
                         before the overwrite",
                        task_label(graph, r),
                        task_label(graph, w)
                    ),
                });
            }
        }
    }

    findings.sort_by_key(|f| f.task);
    (findings, versions.len())
}
