//! Ancestor reachability over the task DAG via per-task bitsets.
//!
//! Tasks are inserted in topological order (the graph rejects forward
//! dependencies), so one linear sweep OR-ing each task's dependencies'
//! ancestor sets computes full transitive reachability in O(n²/64) words
//! — a few milliseconds for the few-thousand-task graphs the schedule
//! builder emits.

use ratel_sim::{TaskGraph, TaskId};

/// Precomputed strict-ancestor relation for one [`TaskGraph`].
pub struct Reachability {
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Computes ancestor bitsets for every task in `graph`.
    pub fn new(graph: &TaskGraph) -> Self {
        let n = graph.len();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for t in graph.task_ids() {
            let deps: Vec<TaskId> = graph.deps(t).to_vec();
            let (done, cur) = bits.split_at_mut(t.0 * words);
            let row = &mut cur[..words];
            for d in deps {
                row[d.0 / 64] |= 1 << (d.0 % 64);
                let drow = &done[d.0 * words..(d.0 + 1) * words];
                for (w, dw) in row.iter_mut().zip(drow) {
                    *w |= dw;
                }
            }
        }
        Reachability { words, bits }
    }

    /// Whether `a` is a strict ancestor of `b`: every execution completes
    /// `a` before `b` starts. `reaches(t, t)` is `false`.
    pub fn reaches(&self, a: TaskId, b: TaskId) -> bool {
        if a.0 >= b.0 {
            // Insertion order is topological: ancestors have smaller ids.
            return false;
        }
        self.bits[b.0 * self.words + a.0 / 64] & (1 << (a.0 % 64)) != 0
    }
}

/// A concrete dependency path `from -> ... -> to` (inclusive), for use as
/// a finding witness. Only valid when `reach.reaches(from, to)`.
pub fn witness_path(
    graph: &TaskGraph,
    reach: &Reachability,
    from: TaskId,
    to: TaskId,
) -> Vec<TaskId> {
    debug_assert!(reach.reaches(from, to));
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        let next = graph
            .deps(cur)
            .iter()
            .copied()
            .find(|d| *d == from || reach.reaches(from, *d))
            .expect("witness_path called without reachability");
        path.push(next);
        cur = next;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_sim::Stage;

    #[test]
    fn reachability_is_transitive_and_strict() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task(r, 1.0, Stage::Forward, &[]);
        let b = g.add_task(r, 1.0, Stage::Forward, &[a]);
        let c = g.add_task(r, 1.0, Stage::Forward, &[b]);
        let lone = g.add_task(r, 1.0, Stage::Forward, &[]);
        let reach = Reachability::new(&g);
        assert!(reach.reaches(a, b));
        assert!(reach.reaches(a, c));
        assert!(reach.reaches(b, c));
        assert!(!reach.reaches(c, a));
        assert!(!reach.reaches(a, a));
        assert!(!reach.reaches(a, lone));
        assert!(!reach.reaches(lone, c));
    }

    #[test]
    fn witness_path_walks_real_edges() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task(r, 1.0, Stage::Forward, &[]);
        let b = g.add_task(r, 1.0, Stage::Forward, &[a]);
        let _side = g.add_task(r, 1.0, Stage::Forward, &[a]);
        let c = g.add_task(r, 1.0, Stage::Forward, &[b]);
        let reach = Reachability::new(&g);
        assert_eq!(witness_path(&g, &reach, a, c), vec![a, b, c]);
    }

    #[test]
    fn wide_graphs_cross_word_boundaries() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let root = g.add_task(r, 1.0, Stage::Forward, &[]);
        let mut last = root;
        for _ in 0..200 {
            last = g.add_task(r, 1.0, Stage::Forward, &[last]);
        }
        let reach = Reachability::new(&g);
        assert!(reach.reaches(root, last));
        assert!(reach.reaches(TaskId(100), last));
        assert!(!reach.reaches(last, root));
    }
}
