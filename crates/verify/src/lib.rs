#![warn(missing_docs)]
//! Static schedule & invariant analyzer: proves a [`TaskGraph`] safe
//! before it runs, without simulating it.
//!
//! The simulator executes *one* linear extension of the task DAG; a
//! schedule can look correct under FIFO service yet still be unsafe —
//! a missing edge only bites when queue timing shifts. This crate checks
//! the properties the Ratel paper claims, over **all** linear
//! extensions:
//!
//! 1. **Dataflow / version analysis** ([`dataflow`]) — every consumer of
//!    a blob version is dominated by its producer (use-before-fetch,
//!    §IV-C parameter/gradient staleness), and in-place writers of
//!    persistent state are ordered after every reader of the previous
//!    version (write-after-read hazards).
//! 2. **Residency interval analysis** ([`residency`]) — the worst-case
//!    concurrent footprint per memory tier, via interval overlap over
//!    the partial order (not enumeration), stays within the planner's
//!    §IV-D budgets (`MEM_avail`, SSD spill allowance).
//! 3. **Resource legality** ([`legality`]) — tasks are bound to
//!    resources that can physically serve them, the SSD array stays
//!    simplex (one FIFO for reads and writes), PCIe stays duplex
//!    (directions on disjoint lanes), and every edge runs forward in
//!    `Stage::ALL`/iteration order.
//!
//! Tasks without [`TaskMeta`] annotations are invisible to the passes,
//! so foreign or hand-built graphs verify clean by default; annotated
//! graphs built by `ratel-core`'s schedule builder get the full check.
//! `ratel-bench verify-plans` sweeps the model zoo × offload modes ×
//! baselines through [`verify`] and fails CI on any finding.

pub mod dataflow;
pub mod finding;
pub mod legality;
pub mod reach;
pub mod residency;

pub use finding::{Finding, Rule, VerifyReport};
pub use reach::{witness_path, Reachability};
pub use residency::Limits;

use ratel_sim::TaskGraph;
#[cfg(doc)]
use ratel_sim::TaskMeta;

/// Runs all static passes over `graph` against `limits`.
pub fn verify(graph: &TaskGraph, limits: &Limits) -> VerifyReport {
    let reach = Reachability::new(graph);
    let mut report = VerifyReport {
        tasks_checked: graph
            .task_ids()
            .filter(|t| graph.meta(*t).is_some())
            .count(),
        ..VerifyReport::default()
    };
    let (df, versions) = dataflow::check(graph, &reach);
    report.versions_seen = versions;
    report.findings.extend(df);
    let (res, intervals) = residency::check(graph, &reach, limits);
    report.intervals = intervals;
    report.findings.extend(res);
    report.findings.extend(legality::check(graph));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratel_sim::{
        BlobKey, BlobKind, MemTier, OpClass, ResourceClass, Stage, TaskGraph, TaskMeta,
        VersionedBlob,
    };

    fn v(kind: BlobKind, layer: usize, version: u64) -> VersionedBlob {
        VersionedBlob {
            key: BlobKey::shared(kind, layer),
            version,
        }
    }

    #[test]
    fn unannotated_graphs_verify_clean() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let a = g.add_task(r, 1.0, Stage::Forward, &[]);
        g.add_task(r, 1.0, Stage::Backward, &[a]);
        let report = verify(&g, &Limits::none());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.tasks_checked, 0);
    }

    #[test]
    fn dominated_reads_are_clean_and_undominated_reads_are_flagged() {
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        let gpu = g.add_resource("gpu");
        let p = v(BlobKind::Act, 0, 1);
        let w = g.add_task_labeled(ssd, 1.0, Stage::Forward, &[], "produce");
        g.set_meta(w, TaskMeta::new(OpClass::SsdWrite, 0).write(p));
        let rd = g.add_task_labeled(gpu, 1.0, Stage::Backward, &[w], "consume");
        g.set_meta(rd, TaskMeta::new(OpClass::GpuCompute, 0).read(p));
        assert!(verify(&g, &Limits::none()).is_clean());

        // Sever the edge: the read is no longer dominated.
        g.remove_dep(rd, w);
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::UseBeforeFetch);
        assert_eq!(report.findings[0].task, rd);
    }

    #[test]
    fn param_reads_map_to_the_staleness_rule() {
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        let p = v(BlobKind::Param16, 3, 1);
        let w = g.add_task_labeled(ssd, 1.0, Stage::Optimizer, &[], "opt-write");
        g.set_meta(w, TaskMeta::new(OpClass::SsdWrite, 0).write(p));
        let rd = g.add_task_labeled(ssd, 1.0, Stage::Forward, &[], "fwd-read");
        g.set_meta(rd, TaskMeta::new(OpClass::SsdRead, 1).read(p));
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::Staleness);
    }

    #[test]
    fn version_zero_reads_need_no_producer() {
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        let rd = g.add_task(ssd, 1.0, Stage::Forward, &[]);
        g.set_meta(
            rd,
            TaskMeta::new(OpClass::SsdRead, 0).read(v(BlobKind::Param16, 0, 0)),
        );
        assert!(verify(&g, &Limits::none()).is_clean());
    }

    #[test]
    fn missing_producer_of_a_positive_version_is_flagged() {
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        let rd = g.add_task(ssd, 1.0, Stage::Forward, &[]);
        g.set_meta(
            rd,
            TaskMeta::new(OpClass::SsdRead, 0).read(v(BlobKind::Act, 0, 2)),
        );
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].detail.contains("no task produces"));
    }

    #[test]
    fn write_after_read_hazard_on_persistent_state() {
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        let p0 = v(BlobKind::Param16, 0, 0);
        let p1 = v(BlobKind::Param16, 0, 1);
        let rd = g.add_task_labeled(ssd, 1.0, Stage::Forward, &[], "read-v0");
        g.set_meta(rd, TaskMeta::new(OpClass::SsdRead, 0).read(p0));
        // The overwrite is concurrent with the read: hazard.
        let w = g.add_task_labeled(ssd, 1.0, Stage::Optimizer, &[], "write-v1");
        g.set_meta(w, TaskMeta::new(OpClass::SsdWrite, 0).write(p1));
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::WriteAfterRead);

        // Ordering the write after the read fixes it.
        let mut g2 = TaskGraph::new();
        let ssd = g2.add_resource("ssd");
        let rd = g2.add_task(ssd, 1.0, Stage::Forward, &[]);
        g2.set_meta(rd, TaskMeta::new(OpClass::SsdRead, 0).read(p0));
        let w = g2.add_task(ssd, 1.0, Stage::Optimizer, &[rd]);
        g2.set_meta(w, TaskMeta::new(OpClass::SsdWrite, 0).write(p1));
        assert!(verify(&g2, &Limits::none()).is_clean());
    }

    #[test]
    fn transient_blobs_are_exempt_from_write_after_read() {
        // Double-buffered staging: the backward prefetch may legally
        // overlap the forward copy's use.
        let mut g = TaskGraph::new();
        let m2g = g.add_resource("m2g");
        let b0 = v(BlobKind::ParamGpu, 0, 1);
        let b1 = v(BlobKind::ParamGpu, 0, 2);
        let f = g.add_task(m2g, 1.0, Stage::Forward, &[]);
        g.set_meta(f, TaskMeta::new(OpClass::TransferM2G, 0).write(b0));
        let use0 = g.add_task(m2g, 1.0, Stage::Forward, &[f]);
        g.set_meta(use0, TaskMeta::new(OpClass::TransferM2G, 0).read(b0));
        let prefetch = g.add_task(m2g, 1.0, Stage::Backward, &[f]);
        g.set_meta(prefetch, TaskMeta::new(OpClass::TransferM2G, 0).write(b1));
        assert!(verify(&g, &Limits::none()).is_clean());
    }

    #[test]
    fn duplicate_producers_are_flagged() {
        let mut g = TaskGraph::new();
        let ssd = g.add_resource("ssd");
        let p = v(BlobKind::Act, 0, 1);
        let a = g.add_task(ssd, 1.0, Stage::Forward, &[]);
        g.set_meta(a, TaskMeta::new(OpClass::SsdWrite, 0).write(p));
        let b = g.add_task(ssd, 1.0, Stage::Forward, &[a]);
        g.set_meta(b, TaskMeta::new(OpClass::SsdWrite, 0).write(p));
        let report = verify(&g, &Limits::none());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::DuplicateProducer));
    }

    #[test]
    fn overlapping_residency_exceeding_budget_is_flagged() {
        let mut g = TaskGraph::new();
        let g2m = g.add_resource("g2m");
        let k0 = BlobKey::shared(BlobKind::Act, 0);
        let k1 = BlobKey::shared(BlobKind::Act, 1);
        // Two 1 GB intervals with no ordering between alloc/free pairs:
        // they may coexist.
        let a0 = g.add_task(g2m, 1.0, Stage::Forward, &[]);
        g.set_meta(
            a0,
            TaskMeta::new(OpClass::TransferG2M, 0).alloc(MemTier::Host, k0, 1e9),
        );
        let a1 = g.add_task(g2m, 1.0, Stage::Forward, &[]);
        g.set_meta(
            a1,
            TaskMeta::new(OpClass::TransferG2M, 0).alloc(MemTier::Host, k1, 1e9),
        );
        let report = verify(
            &g,
            &Limits {
                host: Some(1.5e9),
                ..Limits::none()
            },
        );
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::CapacityExceeded);
        assert_eq!(report.intervals, 2);

        // A 2 GB budget fits both.
        let report = verify(
            &g,
            &Limits {
                host: Some(2.0e9),
                ..Limits::none()
            },
        );
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn serialized_residency_does_not_stack() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let k0 = BlobKey::shared(BlobKind::Act, 0);
        let k1 = BlobKey::shared(BlobKind::Act, 1);
        let a0 = g.add_task(r, 1.0, Stage::Forward, &[]);
        g.set_meta(
            a0,
            TaskMeta::new(OpClass::CpuCompute, 0).alloc(MemTier::Host, k0, 1e9),
        );
        let f0 = g.add_task(r, 1.0, Stage::Backward, &[a0]);
        g.set_meta(
            f0,
            TaskMeta::new(OpClass::CpuCompute, 0).free(MemTier::Host, k0),
        );
        // Second interval allocates strictly after the first is freed.
        let a1 = g.add_task(r, 1.0, Stage::Backward, &[f0]);
        g.set_meta(
            a1,
            TaskMeta::new(OpClass::CpuCompute, 0).alloc(MemTier::Host, k1, 1e9),
        );
        let report = verify(
            &g,
            &Limits {
                host: Some(1.5e9),
                ..Limits::none()
            },
        );
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn residency_bookkeeping_errors_are_flagged() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let k = BlobKey::shared(BlobKind::Act, 0);
        let stray = g.add_task(r, 1.0, Stage::Forward, &[]);
        g.set_meta(
            stray,
            TaskMeta::new(OpClass::TransferM2G, 0).free(MemTier::Host, k),
        );
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::ResidencyBookkeeping);
    }

    #[test]
    fn op_class_must_match_resource_class() {
        let mut g = TaskGraph::new();
        let pcie = g.add_resource("pcie-g2m");
        g.set_resource_class(pcie, ResourceClass::PcieG2M);
        let t = g.add_task(pcie, 1.0, Stage::Optimizer, &[]);
        g.set_meta(t, TaskMeta::new(OpClass::CpuCompute, 0));
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::IllegalResource);
    }

    #[test]
    fn ssd_traffic_must_share_one_simplex_resource() {
        let mut g = TaskGraph::new();
        let ssd_r = g.add_resource("ssd-read-lane");
        let ssd_w = g.add_resource("ssd-write-lane");
        let a = g.add_task(ssd_r, 1.0, Stage::Forward, &[]);
        g.set_meta(a, TaskMeta::new(OpClass::SsdRead, 0));
        let b = g.add_task(ssd_w, 1.0, Stage::Forward, &[]);
        g.set_meta(b, TaskMeta::new(OpClass::SsdWrite, 0));
        let report = verify(&g, &Limits::none());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::SimplexViolation));
    }

    #[test]
    fn pcie_directions_must_not_share_a_resource() {
        let mut g = TaskGraph::new();
        let lane = g.add_resource("pcie");
        let a = g.add_task(lane, 1.0, Stage::Forward, &[]);
        g.set_meta(a, TaskMeta::new(OpClass::TransferM2G, 0));
        let b = g.add_task(lane, 1.0, Stage::Forward, &[]);
        g.set_meta(b, TaskMeta::new(OpClass::TransferG2M, 0));
        let report = verify(&g, &Limits::none());
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == Rule::DuplexViolation));
    }

    #[test]
    fn edges_must_follow_stage_and_iteration_order() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        // Same iteration, backward -> forward edge: illegal.
        let b = g.add_task(r, 1.0, Stage::Backward, &[]);
        g.set_meta(b, TaskMeta::new(OpClass::GpuCompute, 0));
        let f = g.add_task(r, 1.0, Stage::Forward, &[b]);
        g.set_meta(f, TaskMeta::new(OpClass::GpuCompute, 0));
        let report = verify(&g, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::StageOrder);

        // Iteration going backwards along an edge: illegal.
        let mut g2 = TaskGraph::new();
        let r = g2.add_resource("r");
        let late = g2.add_task(r, 1.0, Stage::Forward, &[]);
        g2.set_meta(late, TaskMeta::new(OpClass::GpuCompute, 1));
        let early = g2.add_task(r, 1.0, Stage::Forward, &[late]);
        g2.set_meta(early, TaskMeta::new(OpClass::GpuCompute, 0));
        let report = verify(&g2, &Limits::none());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, Rule::StageOrder);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("r");
        let t = g.add_task_labeled(r, 1.0, Stage::Forward, &[], "a \"quoted\" label");
        g.set_meta(
            t,
            TaskMeta::new(OpClass::GpuCompute, 0).read(v(BlobKind::Act, 0, 5)),
        );
        let report = verify(&g, &Limits::none());
        let json = report.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("use-before-fetch"));
        assert!(json.contains("a \\\"quoted\\\" label"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
