//! Resource-legality pass.
//!
//! Checks the schedule's physical plausibility: every annotated task is
//! bound to a resource of the matching class, all SSD traffic shares the
//! *one* simplex array FIFO (its reads and writes contend; they must not
//! be split across queues, which would let them overlap), the two PCIe
//! directions stay on disjoint lanes (the link is duplex; merging them
//! would serialize traffic that real hardware overlaps), and every
//! dependency edge runs forward in time — non-decreasing `Stage::ALL`
//! index within an iteration, non-decreasing iteration across them.

use std::collections::HashMap;

use ratel_sim::{OpClass, ResourceClass, ResourceId, Stage, TaskGraph};

use crate::finding::{task_label, Finding, Rule};

/// The resource class an operation class must be bound to.
fn required_class(op: OpClass) -> ResourceClass {
    match op {
        OpClass::GpuCompute => ResourceClass::GpuCompute,
        OpClass::CpuCompute => ResourceClass::CpuCompute,
        OpClass::TransferG2M => ResourceClass::PcieG2M,
        OpClass::TransferM2G => ResourceClass::PcieM2G,
        OpClass::SsdRead | OpClass::SsdWrite => ResourceClass::SsdArray,
        OpClass::Hook => ResourceClass::Overhead,
    }
}

fn stage_index(s: Stage) -> usize {
    s.index()
}

/// Runs the legality pass.
pub fn check(graph: &TaskGraph) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Op class vs declared resource class.
    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        let res = graph.resource(t);
        if let Some(class) = graph.resource_class(res) {
            let want = required_class(meta.op);
            if class != want {
                findings.push(Finding {
                    rule: Rule::IllegalResource,
                    task: t,
                    label: task_label(graph, t),
                    blob: None,
                    detail: format!(
                        "op `{}` is bound to `{}` (class {}), which cannot serve it",
                        meta.op.name(),
                        graph.resource_name(res),
                        class.name()
                    ),
                    witness: Vec::new(),
                    suggestion: format!("bind the task to a {} resource", want.name()),
                });
            }
        }
    }

    // Simplex SSD: at most one SsdArray-classed resource, and all SSD ops
    // on one resource.
    let ssd_resources: Vec<ResourceId> = graph
        .resource_ids()
        .filter(|r| graph.resource_class(*r) == Some(ResourceClass::SsdArray))
        .collect();
    if ssd_resources.len() > 1 {
        let names: Vec<&str> = ssd_resources
            .iter()
            .map(|r| graph.resource_name(*r))
            .collect();
        findings.push(Finding {
            rule: Rule::SimplexViolation,
            task: ratel_sim::TaskId(0),
            label: "graph".into(),
            blob: None,
            detail: format!(
                "{} resources declared as the SSD array ({}): the simplex array is one FIFO",
                ssd_resources.len(),
                names.join(", ")
            ),
            witness: Vec::new(),
            suggestion: "register a single `ssd` resource and route all reads and writes \
                         through it"
                .into(),
        });
    }
    let mut ssd_home: Option<ResourceId> = None;
    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        if !matches!(meta.op, OpClass::SsdRead | OpClass::SsdWrite) {
            continue;
        }
        let res = graph.resource(t);
        match ssd_home {
            None => ssd_home = Some(res),
            Some(home) if home != res => {
                findings.push(Finding {
                    rule: Rule::SimplexViolation,
                    task: t,
                    label: task_label(graph, t),
                    blob: None,
                    detail: format!(
                        "SSD traffic split across `{}` and `{}`: reads and writes must \
                         contend on the one simplex FIFO",
                        graph.resource_name(home),
                        graph.resource_name(res)
                    ),
                    witness: Vec::new(),
                    suggestion: format!(
                        "route this task through `{}` like the rest of the SSD traffic",
                        graph.resource_name(home)
                    ),
                });
            }
            Some(_) => {}
        }
    }

    // Duplex PCIe: no resource serves both transfer directions.
    let mut directions: HashMap<ResourceId, (OpClass, ratel_sim::TaskId)> = HashMap::new();
    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        if !matches!(meta.op, OpClass::TransferG2M | OpClass::TransferM2G) {
            continue;
        }
        let res = graph.resource(t);
        match directions.get(&res) {
            None => {
                directions.insert(res, (meta.op, t));
            }
            Some(&(dir, first)) if dir != meta.op => {
                findings.push(Finding {
                    rule: Rule::DuplexViolation,
                    task: t,
                    label: task_label(graph, t),
                    blob: None,
                    detail: format!(
                        "`{}` serves both PCIe directions (`{}` also runs {} on it): \
                         the link is duplex, directions must not share a queue",
                        graph.resource_name(res),
                        task_label(graph, first),
                        dir.name()
                    ),
                    witness: Vec::new(),
                    suggestion: "split G2M and M2G traffic onto separate per-direction \
                                 resources"
                        .into(),
                });
            }
            Some(_) => {}
        }
    }

    // Edges run forward in time.
    for e in graph.edges() {
        let (Some(mu), Some(mw)) = (graph.meta(e.from), graph.meta(e.to)) else {
            continue;
        };
        if mu.iteration > mw.iteration {
            findings.push(Finding {
                rule: Rule::StageOrder,
                task: e.to,
                label: task_label(graph, e.to),
                blob: None,
                detail: format!(
                    "depends on `{}` from iteration {} while itself in iteration {}: \
                     edges must not run backwards across iterations",
                    task_label(graph, e.from),
                    mu.iteration,
                    mw.iteration
                ),
                witness: vec![task_label(graph, e.from), task_label(graph, e.to)],
                suggestion: "re-derive the dependency from the producing iteration".into(),
            });
        } else if mu.iteration == mw.iteration {
            let (su, sw) = (graph.stage(e.from), graph.stage(e.to));
            if stage_index(su) > stage_index(sw) {
                findings.push(Finding {
                    rule: Rule::StageOrder,
                    task: e.to,
                    label: task_label(graph, e.to),
                    blob: None,
                    detail: format!(
                        "{} task depends on same-iteration {} task `{}`: edges must \
                         follow Stage::ALL order within an iteration",
                        sw.name(),
                        su.name(),
                        task_label(graph, e.from)
                    ),
                    witness: vec![task_label(graph, e.from), task_label(graph, e.to)],
                    suggestion: "attribute the earlier task to the earlier stage, or move \
                                 the dependency to the next iteration"
                        .into(),
                });
            }
        }
    }

    findings.sort_by_key(|f| f.task);
    findings
}
