//! Residency interval analysis.
//!
//! Each annotated allocation opens an interval on a memory tier that
//! closes when the matching free task completes (or never). Two
//! intervals *may* coexist in some linear extension of the DAG unless
//! the free of one is a strict ancestor of the alloc of the other — so
//! the worst-case concurrent footprint of a tier is bounded by the
//! heaviest *may-overlap clique*. Computing the exact maximum clique is
//! NP-hard in general; we use the sound anchor bound
//! `max_I (bytes_I + Σ bytes_J over J may-overlapping I)`, which is
//! exact whenever every pair in the realized worst case overlaps a
//! common anchor — true for the builder's schedules, where all host
//! activation intervals coexist at the forward/backward boundary.
//!
//! This is the static form of the paper's §IV-D capacity model: swapped
//! activations must fit `MEM_avail`, with at most the `α·A_G2M` overflow
//! allowed onto the SSD spill budget.

use std::collections::HashMap;

use ratel_sim::{BlobKey, MemTier, TaskGraph, TaskId};

use crate::finding::{task_label, Finding, Rule};
use crate::reach::Reachability;

/// Per-tier worst-case footprint budgets, in bytes. `None` disables the
/// capacity check for that tier (bookkeeping checks still run).
#[derive(Debug, Clone, Copy, Default)]
pub struct Limits {
    /// GPU device-memory budget.
    pub gpu: Option<f64>,
    /// Host main-memory budget (the planner's `MEM_avail`).
    pub host: Option<f64>,
    /// SSD budget (capacity, or the planner's spill allowance).
    pub ssd: Option<f64>,
}

impl Limits {
    /// No capacity limits: structural checks only.
    pub fn none() -> Self {
        Limits::default()
    }

    /// The budget for one tier.
    pub fn for_tier(&self, tier: MemTier) -> Option<f64> {
        match tier {
            MemTier::Gpu => self.gpu,
            MemTier::Host => self.host,
            MemTier::Ssd => self.ssd,
        }
    }
}

#[derive(Debug)]
struct Interval {
    tier: MemTier,
    blob: BlobKey,
    bytes: f64,
    alloc: TaskId,
    free: Option<TaskId>,
}

/// Runs the residency pass. Returns findings plus the number of
/// intervals analyzed.
pub fn check(graph: &TaskGraph, reach: &Reachability, limits: &Limits) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    // Open interval per (tier, blob); insertion order is topological, so
    // a free closes the most recent alloc of that slot.
    let mut open: HashMap<(MemTier, BlobKey), usize> = HashMap::new();

    for t in graph.task_ids() {
        let Some(meta) = graph.meta(t) else { continue };
        for f in &meta.frees {
            match open.remove(f) {
                Some(idx) => {
                    intervals[idx].free = Some(t);
                    let alloc = intervals[idx].alloc;
                    if !reach.reaches(alloc, t) {
                        findings.push(Finding {
                            rule: Rule::ResidencyBookkeeping,
                            task: t,
                            label: task_label(graph, t),
                            blob: Some(f.1.to_string()),
                            detail: format!(
                                "frees {} on {} but is not ordered after the allocating \
                                 task `{}` — the interval has no well-defined lifetime",
                                f.1,
                                f.0.name(),
                                task_label(graph, alloc)
                            ),
                            witness: Vec::new(),
                            suggestion: "make the freeing task depend (transitively) on the \
                                         allocating task"
                                .into(),
                        });
                    }
                }
                None => {
                    findings.push(Finding {
                        rule: Rule::ResidencyBookkeeping,
                        task: t,
                        label: task_label(graph, t),
                        blob: Some(f.1.to_string()),
                        detail: format!("frees {} on {} with no open allocation", f.1, f.0.name()),
                        witness: Vec::new(),
                        suggestion: "drop the stray free, or add the matching alloc".into(),
                    });
                }
            }
        }
        for a in &meta.allocs {
            let slot = (a.tier, a.blob);
            if let Some(&prev) = open.get(&slot) {
                findings.push(Finding {
                    rule: Rule::ResidencyBookkeeping,
                    task: t,
                    label: task_label(graph, t),
                    blob: Some(a.blob.to_string()),
                    detail: format!(
                        "allocates {} on {} while `{}` already holds it open",
                        a.blob,
                        a.tier.name(),
                        task_label(graph, intervals[prev].alloc)
                    ),
                    witness: Vec::new(),
                    suggestion: "free the previous allocation first, or key the blob per \
                                 iteration/buffer"
                        .into(),
                });
            }
            open.insert(slot, intervals.len());
            intervals.push(Interval {
                tier: a.tier,
                blob: a.blob,
                bytes: a.bytes,
                alloc: t,
                free: None,
            });
        }
    }

    // Worst-case footprint per tier via the anchor bound.
    for tier in MemTier::ALL {
        let Some(budget) = limits.for_tier(tier) else {
            continue;
        };
        let tier_ivs: Vec<&Interval> = intervals.iter().filter(|i| i.tier == tier).collect();
        let mut worst: Option<(f64, &Interval, usize)> = None;
        for (n, anchor) in tier_ivs.iter().enumerate() {
            let mut total = anchor.bytes;
            let mut others = 0usize;
            for (m, j) in tier_ivs.iter().enumerate() {
                if m == n {
                    continue;
                }
                if may_overlap(reach, anchor, j) {
                    total += j.bytes;
                    others += 1;
                }
            }
            if worst.as_ref().is_none_or(|(w, _, _)| total > *w) {
                worst = Some((total, anchor, others));
            }
        }
        if let Some((total, anchor, others)) = worst {
            if total > budget {
                findings.push(Finding {
                    rule: Rule::CapacityExceeded,
                    task: anchor.alloc,
                    label: task_label(graph, anchor.alloc),
                    blob: Some(anchor.blob.to_string()),
                    detail: format!(
                        "{} footprint may reach {:.3e} B ({} concurrent interval(s) \
                         around {}), exceeding the {:.3e} B budget",
                        tier.name(),
                        total,
                        others + 1,
                        anchor.blob,
                        budget
                    ),
                    witness: Vec::new(),
                    suggestion: "shrink the swap plan for this tier, free intervals earlier, \
                                 or serialize the overlapping allocations"
                        .into(),
                });
            }
        }
    }

    findings.sort_by_key(|f| f.task);
    (findings, intervals.len())
}

/// Whether two intervals can coexist in some linear extension: neither
/// one's free is a strict ancestor of the other's alloc.
fn may_overlap(reach: &Reachability, a: &Interval, b: &Interval) -> bool {
    let a_before_b = a
        .free
        .is_some_and(|f| reach.reaches(f, b.alloc) || f == b.alloc);
    let b_before_a = b
        .free
        .is_some_and(|f| reach.reaches(f, a.alloc) || f == a.alloc);
    !(a_before_b || b_before_a)
}
