//! Structured diagnostics and the machine-readable report.

use ratel_sim::{TaskGraph, TaskId};

/// The invariant a finding violates. Each rule maps to one of the paper's
/// correctness claims (see DESIGN.md, "Static schedule verification").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A consumer of parameter/gradient state is not dominated by the
    /// producer of the version it needs (§IV-C "no parameter staleness").
    Staleness,
    /// A consumer of transient data (activations, staging buffers, hidden
    /// state) is not dominated by its producer — it may run before the
    /// data exists on its tier.
    UseBeforeFetch,
    /// A writer of persistent state version `v+1` is not ordered after a
    /// reader of version `v`: the write may clobber bytes still in use.
    WriteAfterRead,
    /// Two tasks claim to produce the same blob version.
    DuplicateProducer,
    /// A tier's worst-case concurrent footprint exceeds its budget
    /// (§IV-D `MEM_avail` / spill-budget capacity model).
    CapacityExceeded,
    /// Residency annotations are inconsistent (free without alloc,
    /// double alloc, free not ordered after its alloc).
    ResidencyBookkeeping,
    /// A task's operation class does not match the class of the resource
    /// it is bound to (e.g. CPU compute on a PCIe lane).
    IllegalResource,
    /// SSD traffic is split across multiple resources — the array is
    /// simplex: reads and writes must share one FIFO.
    SimplexViolation,
    /// Both PCIe directions share one resource — the link is duplex:
    /// G2M and M2G must be independent lanes.
    DuplexViolation,
    /// A dependency edge runs backwards in time: against `Stage::ALL`
    /// order within an iteration, or from a later iteration to an
    /// earlier one.
    StageOrder,
}

impl Rule {
    /// Stable machine-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Staleness => "staleness",
            Rule::UseBeforeFetch => "use-before-fetch",
            Rule::WriteAfterRead => "write-after-read",
            Rule::DuplicateProducer => "duplicate-producer",
            Rule::CapacityExceeded => "capacity-exceeded",
            Rule::ResidencyBookkeeping => "residency-bookkeeping",
            Rule::IllegalResource => "illegal-resource",
            Rule::SimplexViolation => "simplex-violation",
            Rule::DuplexViolation => "duplex-violation",
            Rule::StageOrder => "stage-order",
        }
    }
}

/// One verified violation, with enough context to locate and fix it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated invariant.
    pub rule: Rule,
    /// The task the finding anchors to.
    pub task: TaskId,
    /// That task's timeline label (or `task N` if unlabeled).
    pub label: String,
    /// The blob involved, rendered (e.g. `p16[L3]@v2`), if any.
    pub blob: Option<String>,
    /// What went wrong, in one sentence.
    pub detail: String,
    /// A witness path of task labels through the DAG demonstrating the
    /// hazard, when one exists (empty when the violation is the *absence*
    /// of a path).
    pub witness: Vec<String>,
    /// How to repair the schedule.
    pub suggestion: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.rule.name(), self.label, self.detail)?;
        if let Some(blob) = &self.blob {
            write!(f, " (blob {blob})")?;
        }
        if !self.witness.is_empty() {
            write!(f, "\n    witness: {}", self.witness.join(" -> "))?;
        }
        write!(f, "\n    fix: {}", self.suggestion)
    }
}

/// The result of running the static passes over one graph.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All violations found, in pass order.
    pub findings: Vec<Finding>,
    /// Number of tasks that carried metadata (and were thus analyzed).
    pub tasks_checked: usize,
    /// Number of distinct blob versions seen across reads and writes.
    pub versions_seen: usize,
    /// Number of residency intervals analyzed.
    pub intervals: usize,
}

impl VerifyReport {
    /// Whether no pass found a violation.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "clean: {} annotated tasks, {} blob versions, {} residency intervals\n",
                self.tasks_checked, self.versions_seen, self.intervals
            ));
        } else {
            out.push_str(&format!("{} violation(s):\n", self.findings.len()));
            for f in &self.findings {
                out.push_str(&format!("  {f}\n"));
            }
        }
        out
    }

    /// Machine-readable JSON rendering (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"clean\":{},\"tasks_checked\":{},\"versions_seen\":{},\"intervals\":{},\"findings\":[",
            self.is_clean(),
            self.tasks_checked,
            self.versions_seen,
            self.intervals
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"task\":{},\"label\":{},\"blob\":{},\"detail\":{},\"witness\":[{}],\"suggestion\":{}}}",
                json_str(f.rule.name()),
                f.task.0,
                json_str(&f.label),
                f.blob.as_deref().map_or_else(|| "null".into(), json_str),
                json_str(&f.detail),
                f.witness
                    .iter()
                    .map(|w| json_str(w))
                    .collect::<Vec<_>>()
                    .join(","),
                json_str(&f.suggestion),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The display label of a task, falling back to its index.
pub(crate) fn task_label(g: &TaskGraph, t: TaskId) -> String {
    g.label(t)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("task {}", t.0))
}
