#![warn(missing_docs)]
//! Analytic model descriptions for the Ratel reproduction.
//!
//! Everything the paper's planner and its figures need to know about a model
//! is *static*: how many parameters each layer holds, how many FLOPs its
//! forward pass costs, and how many bytes of activations it produces. This
//! crate provides:
//!
//! * [`config::ModelConfig`] — decoder-only LLM (Table IV) and DiT (Table VI)
//!   architectures with exact parameter/FLOP/activation accounting,
//! * [`zoo`] — the paper's evaluation ladder of models,
//! * [`footprint`] — the Table II tensor inventory (P32/OS32/G16/P16/A16)
//!   with sizes and lifecycles,
//! * [`layer`] — per-layer [`layer::LayerProfile`]s (the unit Algorithm 1
//!   sorts by offloading benefit) and whole-model [`layer::ModelProfile`]s.

pub mod config;
pub mod footprint;
pub mod layer;
pub mod zoo;

pub use config::{ModelConfig, ModelKind};
pub use footprint::{ModelStates, TensorKind};
pub use layer::{ActivationUnit, LayerProfile, ModelProfile, UnitKind};
