//! Per-layer profiles: the granularity at which Ratel schedules transfers
//! and at which Algorithm 1 decides swap-vs-recompute.
//!
//! The paper treats "a layer's activations" as the swappable unit and sorts
//! layers by *offloading benefit* `OB = FLOP_layer / A_layer` (Eq. 6). In a
//! uniform decoder every block is identical, so to expose the benefit
//! ordering the profile splits each block into its attention half and its
//! MLP half, which have genuinely different FLOP-per-byte ratios (the MLP
//! half is denser: ~16 h FLOPs per token-channel over ~14 bytes vs. the
//! attention half's ~8 h + 4 s over ~16 bytes). The embedding produces a
//! large activation that is nearly free to recompute, giving it the lowest
//! benefit of all — exactly the tensor you want to recompute, not swap.

use crate::config::{ModelConfig, ModelKind, ACT_INTRA_ATTN_BYTES, ACT_INTRA_MLP_BYTES};

/// Which part of a layer an activation unit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// Token/patch embedding output (recompute = a lookup, nearly free).
    Embedding,
    /// Attention half of a block (QKV, scores, output projection inputs).
    Attention,
    /// MLP half of a block (fc1/fc2 inputs, GELU input).
    Mlp,
}

/// One swappable group of intra-layer activations.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationUnit {
    /// Index of the owning layer in [`ModelProfile::layers`].
    pub layer: usize,
    /// Which half of the layer this unit covers.
    pub kind: UnitKind,
    /// Activation bytes this unit stores.
    pub bytes: f64,
    /// GPU FLOPs required to rematerialize the unit during backward if it
    /// was discarded instead of swapped.
    pub recompute_flops: f64,
}

impl ActivationUnit {
    /// Offloading benefit `OB = FLOP / A` (Eq. 6): recompute FLOPs saved per
    /// byte of swap traffic. Higher benefit means swap first.
    pub fn offloading_benefit(&self) -> f64 {
        if self.bytes == 0.0 {
            0.0
        } else {
            self.recompute_flops / self.bytes
        }
    }
}

/// Static profile of one schedulable layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Position in execution order (0 = embedding, then blocks, then head).
    pub id: usize,
    /// Human-readable label ("block 17", "embedding", "head").
    pub label: String,
    /// Trainable parameters in this layer.
    pub params: f64,
    /// Forward FLOPs at the profiled batch size.
    pub forward_flops: f64,
    /// Inter-layer (checkpoint) activation bytes this layer outputs; always
    /// swapped — the `A_interBlock` floor of Algorithm 1.
    pub inter_act_bytes: f64,
    /// Intra-layer activation units (swap-or-recompute candidates).
    pub units: Vec<ActivationUnit>,
}

impl LayerProfile {
    /// Total intra-layer (recomputable) activation bytes.
    pub fn intra_act_bytes(&self) -> f64 {
        self.units.iter().map(|u| u.bytes).sum()
    }
}

/// The whole model as a list of schedulable layers at a fixed batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// The architecture this profile was derived from.
    pub config: ModelConfig,
    /// Batch size the activation/FLOP numbers assume.
    pub batch: usize,
    /// Layers in execution order.
    pub layers: Vec<LayerProfile>,
}

impl ModelProfile {
    /// Builds the per-layer profile of `config` at batch size `batch`.
    pub fn new(config: &ModelConfig, batch: usize) -> Self {
        let b = batch as f64;
        let s = config.seq_len as f64;
        let h = config.hidden as f64;
        let token_channels = b * s * h;

        let mut layers = Vec::with_capacity(config.layers + 2);

        // Embedding layer: large output activation, trivially recomputable.
        let embed_flops = 2.0 * b * s * h; // add + scale per token-channel
        layers.push(LayerProfile {
            id: 0,
            label: "embedding".to_string(),
            params: config.embedding_params(),
            forward_flops: embed_flops,
            inter_act_bytes: 2.0 * token_channels,
            units: vec![ActivationUnit {
                layer: 0,
                kind: UnitKind::Embedding,
                bytes: 2.0 * token_channels,
                recompute_flops: embed_flops,
            }],
        });

        // Transformer blocks. Attention-half FLOPs: QKV (6 b s h^2) + scores
        // and values (4 b s^2 h) + output projection (2 b s h^2); MLP-half:
        // 16 b s h^2.
        let attn_flops = 8.0 * b * s * h * h + 4.0 * b * s * s * h;
        let mlp_flops = 16.0 * b * s * h * h;
        for i in 0..config.layers {
            let id = i + 1;
            layers.push(LayerProfile {
                id,
                label: format!("block {i}"),
                params: config.block_params(),
                forward_flops: attn_flops + mlp_flops,
                inter_act_bytes: 2.0 * token_channels,
                units: vec![
                    ActivationUnit {
                        layer: id,
                        kind: UnitKind::Attention,
                        bytes: ACT_INTRA_ATTN_BYTES * token_channels,
                        recompute_flops: attn_flops,
                    },
                    ActivationUnit {
                        layer: id,
                        kind: UnitKind::Mlp,
                        bytes: ACT_INTRA_MLP_BYTES * token_channels,
                        recompute_flops: mlp_flops,
                    },
                ],
            });
        }

        // Output head: logits are consumed immediately by the loss, so no
        // stored activation; parameters are tied with the embedding for LMs.
        let head_params = match config.kind {
            ModelKind::DecoderLm => 0.0,
            ModelKind::DiT => 2.0 * h * 8.0,
        };
        layers.push(LayerProfile {
            id: config.layers + 1,
            label: "head".to_string(),
            params: head_params,
            forward_flops: config.head_forward_flops(batch),
            inter_act_bytes: 0.0,
            units: Vec::new(),
        });

        ModelProfile {
            config: config.clone(),
            batch,
            layers,
        }
    }

    /// Total trainable parameters across layers.
    pub fn total_params(&self) -> f64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// `FLOP_f`: total forward FLOPs.
    pub fn forward_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.forward_flops).sum()
    }

    /// `A_all`: total activation bytes (inter + intra).
    pub fn total_act_bytes(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.inter_act_bytes + l.intra_act_bytes())
            .sum()
    }

    /// `A_interBlock`: total checkpoint bytes (the minimum swap amount).
    pub fn inter_act_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.inter_act_bytes).sum()
    }

    /// Largest per-layer parameter count — sizes the GPU staging buffers
    /// and the host-side optimizer working set.
    pub fn max_layer_params(&self) -> f64 {
        self.layers.iter().map(|l| l.params).fold(0.0, f64::max)
    }

    /// All intra-layer activation units, sorted by descending offloading
    /// benefit — the order Algorithm 1 walks (line 6).
    pub fn units_by_benefit(&self) -> Vec<&ActivationUnit> {
        let mut units: Vec<&ActivationUnit> =
            self.layers.iter().flat_map(|l| l.units.iter()).collect();
        units.sort_by(|a, b| {
            b.offloading_benefit()
                .total_cmp(&a.offloading_benefit())
                .then(a.layer.cmp(&b.layer))
        });
        units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile13b() -> ModelProfile {
        ModelProfile::new(&ModelConfig::decoder_lm("13B", 40, 40, 5120), 32)
    }

    #[test]
    fn profile_totals_match_config() {
        let p = profile13b();
        let c = &p.config;
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1.0);
        assert!(rel(p.total_params(), c.total_params()) < 0.01);
        assert!(rel(p.forward_flops(), c.forward_flops(32)) < 0.01);
        // Inter bytes include the embedding output checkpoint, so allow a
        // one-layer tolerance against the block-only config estimate.
        assert!(rel(p.inter_act_bytes(), c.inter_block_act_bytes(32)) < 0.05);
        assert!(rel(p.total_act_bytes(), c.total_act_bytes(32)) < 0.05);
    }

    #[test]
    fn layer_count_is_blocks_plus_embedding_and_head() {
        let p = profile13b();
        assert_eq!(p.layers.len(), 42);
        assert_eq!(p.layers[0].label, "embedding");
        assert_eq!(p.layers[41].label, "head");
    }

    #[test]
    fn benefit_ordering_prefers_mlp_then_attention_then_embedding() {
        let p = profile13b();
        let units = p.units_by_benefit();
        // First all MLP halves, then all attention halves, embedding last.
        assert_eq!(units.first().unwrap().kind, UnitKind::Mlp);
        assert_eq!(units.last().unwrap().kind, UnitKind::Embedding);
        let first_attn = units
            .iter()
            .position(|u| u.kind == UnitKind::Attention)
            .unwrap();
        let last_mlp = units.iter().rposition(|u| u.kind == UnitKind::Mlp).unwrap();
        assert!(last_mlp < first_attn);
    }

    #[test]
    fn benefit_is_monotone_in_sorted_order() {
        let p = profile13b();
        let units = p.units_by_benefit();
        for w in units.windows(2) {
            assert!(w[0].offloading_benefit() >= w[1].offloading_benefit());
        }
    }

    #[test]
    fn head_has_no_stored_activation() {
        let p = profile13b();
        let head = p.layers.last().unwrap();
        assert!(head.units.is_empty());
        assert_eq!(head.inter_act_bytes, 0.0);
    }
}
