//! The paper's model zoo: the decoder-only ladder of Table IV, the DiT
//! ladder of Table VI, and small executable configurations for the real
//! out-of-core engine.

use crate::config::ModelConfig;

/// Table IV: decoder-only models from 6B to 412B parameters.
pub fn llm_ladder() -> Vec<ModelConfig> {
    vec![
        ModelConfig::decoder_lm("6B", 28, 32, 4096),
        ModelConfig::decoder_lm("13B", 40, 40, 5120),
        ModelConfig::decoder_lm("30B", 48, 56, 7168),
        ModelConfig::decoder_lm("70B", 80, 64, 8192),
        ModelConfig::decoder_lm("135B", 88, 88, 11264),
        ModelConfig::decoder_lm("175B", 96, 96, 12288),
        ModelConfig::decoder_lm("276B", 112, 112, 14336),
        ModelConfig::decoder_lm("412B", 128, 128, 16384),
    ]
}

/// Looks up a Table IV model by its nominal size name ("13B", "175B", ...).
pub fn llm(name: &str) -> ModelConfig {
    llm_ladder()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("unknown Table IV model {name:?}"))
}

/// Table VI: DiT models from 0.67B to 40B parameters (512x512 inputs).
pub fn dit_ladder() -> Vec<ModelConfig> {
    vec![
        ModelConfig::dit("DiT-0.67B", 28, 16, 1152),
        ModelConfig::dit("DiT-0.90B", 30, 16, 1280),
        ModelConfig::dit("DiT-1.4B", 32, 16, 1536),
        ModelConfig::dit("DiT-10B", 28, 32, 4096),
        ModelConfig::dit("DiT-20B", 40, 40, 5120),
        ModelConfig::dit("DiT-40B", 48, 56, 7168),
    ]
}

/// A tiny decoder LM that the *real* engine can train in tests and
/// examples: 4 blocks, hidden 64, short sequences, small vocabulary.
pub fn tiny_lm() -> ModelConfig {
    ModelConfig {
        name: "tiny-4L".to_string(),
        seq_len: 32,
        vocab: 256,
        ..ModelConfig::decoder_lm("tiny-4L", 4, 4, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_sizes_are_close_to_nominal() {
        for m in llm_ladder() {
            let nominal: f64 = m.name.trim_end_matches('B').parse().unwrap();
            let actual = m.size_billions();
            let rel = (actual - nominal).abs() / nominal;
            // Table IV names are nominal; the 70B entry (80 x 8192) is the
            // loosest at ~8% below its name.
            assert!(rel < 0.10, "{}: actual {actual:.1}B", m.name);
        }
    }

    #[test]
    fn ladder_is_monotonically_increasing() {
        let sizes: Vec<f64> = llm_ladder().iter().map(|m| m.size_billions()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn dit_ladder_matches_table_vi_shapes() {
        let dits = dit_ladder();
        assert_eq!(dits.len(), 6);
        assert_eq!(dits[0].layers, 28);
        assert_eq!(dits[0].hidden, 1152);
        let xl = dits[0].size_billions();
        assert!((0.6..0.75).contains(&xl), "{xl}");
    }

    #[test]
    #[should_panic(expected = "unknown Table IV model")]
    fn unknown_model_panics() {
        llm("1T");
    }

    #[test]
    fn tiny_lm_is_actually_tiny() {
        let m = tiny_lm();
        assert!(m.total_params() < 1e6);
        assert_eq!(m.vocab, 256);
    }
}
