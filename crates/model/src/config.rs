//! Architecture configurations and their analytic accounting.
//!
//! Parameter counts follow the standard GPT-3 decoder layout: each
//! transformer block holds `12 h^2` matmul weights (QKV `3h^2`, output
//! projection `h^2`, MLP `8h^2`) plus `13 h` of biases and layer norms, the
//! token embedding holds `V * h` (tied with the LM head), and the learned
//! positional embedding holds `s * h`. Plugging in Table IV's shapes
//! recovers the paper's nominal model sizes (13B -> 12.9e9 params, 175B ->
//! 174.6e9, ...). DiT blocks (Table VI) additionally carry the adaLN-zero
//! modulation MLP (`6 h^2`), which is what makes DiT-XL/2 675M at 28 layers.
//!
//! FLOP counts use the usual dense-transformer estimate: forward of one
//! block costs `24 b s h^2 + 4 b s^2 h` (matmuls + attention score/value
//! products), the LM head costs `2 b s h V`, and backward costs twice the
//! forward (Table I's `2 FLOP_f`).
//!
//! Activation sizing is calibrated to §III-C: a 13B model at batch 32 and
//! sequence 1024 stores ~200 GB of intra-block activations and ~12.5 GB of
//! inter-block (checkpoint) activations, i.e. ~30 bytes and 2 bytes per
//! token-channel per block respectively in mixed precision.

/// Bytes of intra-block activations per `b*s*h` token-channel, per block.
///
/// The executable engine's streaming-attention saved set (15 row-major
/// `h`-wide tensors plus O(`b*heads*s`) softmax/LayerNorm statistics, two
/// A16 bytes each) lands on this same figure — ~30.03 at the 13B shape —
/// so the analytic planner and the real engine account activations
/// identically; `streaming_attention_shrinks_saved_activation_blob` in
/// the integration suite pins the agreement.
pub const ACT_INTRA_BYTES_PER_TOKEN_CHANNEL: f64 = 30.0;
/// Bytes of inter-block (checkpoint) activations per `b*s*h`, per block.
pub const ACT_INTER_BYTES_PER_TOKEN_CHANNEL: f64 = 2.0;
/// Of the ~30 intra bytes, the share attributable to the attention half of
/// the block (QKV/proj inputs, softmax stats, attention output).
pub const ACT_INTRA_ATTN_BYTES: f64 = 16.0;
/// Intra bytes attributable to the MLP half (fc1 input/output, GELU input).
pub const ACT_INTRA_MLP_BYTES: f64 = 14.0;

/// What kind of large model this is: the task only changes the input head
/// and the throughput unit (tokens/s vs images/s); the transformer backbone
/// math is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Decoder-only language model with a vocabulary head (Table IV).
    DecoderLm,
    /// Diffusion transformer with adaLN-zero conditioning (Table VI).
    DiT,
}

/// A transformer architecture plus the training shape (sequence length and
/// vocabulary) needed for exact accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name ("13B", "DiT-10B", ...).
    pub name: String,
    /// Backbone flavour.
    pub kind: ModelKind,
    /// Number of transformer blocks (`#Layers` in Table IV/VI).
    pub layers: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Hidden dimension `h`.
    pub hidden: usize,
    /// Tokens per sample: the text sequence length (1024 in §V-A) or the
    /// number of image patches for DiT (1024 for 512x512 images at patch 2
    /// over an 8x-downsampled latent).
    pub seq_len: usize,
    /// Vocabulary size (50257 in §V-A); 0 for DiT.
    pub vocab: usize,
}

impl ModelConfig {
    /// A decoder-only LLM with the paper's training shape (s=1024, V=50257).
    pub fn decoder_lm(name: &str, layers: usize, heads: usize, hidden: usize) -> Self {
        ModelConfig {
            name: name.to_string(),
            kind: ModelKind::DecoderLm,
            layers,
            heads,
            hidden,
            seq_len: 1024,
            vocab: 50257,
        }
    }

    /// A DiT model at 512x512 input (latent 64x64, patch 2 -> 1024 tokens).
    pub fn dit(name: &str, layers: usize, heads: usize, hidden: usize) -> Self {
        ModelConfig {
            name: name.to_string(),
            kind: ModelKind::DiT,
            layers,
            heads,
            hidden,
            seq_len: 1024,
            vocab: 0,
        }
    }

    /// Parameters in one transformer block.
    pub fn block_params(&self) -> f64 {
        let h = self.hidden as f64;
        let dense = 12.0 * h * h + 13.0 * h;
        match self.kind {
            ModelKind::DecoderLm => dense,
            // adaLN-zero modulation: a per-block 6h^2 conditioning MLP.
            ModelKind::DiT => dense + 6.0 * h * h,
        }
    }

    /// Parameters in the embedding "layer" (token + positional embeddings
    /// for LMs; patch/timestep/label embedders for DiT, which are tiny).
    pub fn embedding_params(&self) -> f64 {
        let h = self.hidden as f64;
        match self.kind {
            ModelKind::DecoderLm => (self.vocab as f64) * h + (self.seq_len as f64) * h,
            ModelKind::DiT => 8.0 * h * h / 16.0 + (self.seq_len as f64) * h,
        }
    }

    /// Total trainable parameters `P` (Table I). The LM head is tied with
    /// the token embedding, as in GPT-2/OPT.
    pub fn total_params(&self) -> f64 {
        self.block_params() * self.layers as f64
            + self.embedding_params()
            + 2.0 * self.hidden as f64
    }

    /// Model size in billions of parameters (the paper's headline unit).
    pub fn size_billions(&self) -> f64 {
        self.total_params() / 1e9
    }

    /// Forward FLOPs of one block at batch size `b`.
    pub fn block_forward_flops(&self, batch: usize) -> f64 {
        let b = batch as f64;
        let s = self.seq_len as f64;
        let h = self.hidden as f64;
        24.0 * b * s * h * h + 4.0 * b * s * s * h
    }

    /// Forward FLOPs of the output head at batch size `b` (logits matmul
    /// for LMs; the final linear for DiT is negligible and folded in).
    pub fn head_forward_flops(&self, batch: usize) -> f64 {
        let b = batch as f64;
        let s = self.seq_len as f64;
        let h = self.hidden as f64;
        match self.kind {
            ModelKind::DecoderLm => 2.0 * b * s * h * self.vocab as f64,
            ModelKind::DiT => 2.0 * b * s * h * 8.0,
        }
    }

    /// `FLOP_f` of Table I: total forward FLOPs at batch `b`.
    pub fn forward_flops(&self, batch: usize) -> f64 {
        self.block_forward_flops(batch) * self.layers as f64 + self.head_forward_flops(batch)
    }

    /// Intra-block activation bytes of one block at batch `b` (recomputable).
    pub fn block_intra_act_bytes(&self, batch: usize) -> f64 {
        self.token_channels(batch) * ACT_INTRA_BYTES_PER_TOKEN_CHANNEL
    }

    /// Inter-block (checkpoint) activation bytes of one block at batch `b`.
    pub fn block_inter_act_bytes(&self, batch: usize) -> f64 {
        self.token_channels(batch) * ACT_INTER_BYTES_PER_TOKEN_CHANNEL
    }

    /// `A_all` of Table I: total activation bytes at batch `b`.
    pub fn total_act_bytes(&self, batch: usize) -> f64 {
        (self.block_intra_act_bytes(batch) + self.block_inter_act_bytes(batch)) * self.layers as f64
    }

    /// `A_interBlock` of Table I: total checkpoint bytes at batch `b` — the
    /// minimum safe swap amount in Algorithm 1.
    pub fn inter_block_act_bytes(&self, batch: usize) -> f64 {
        self.block_inter_act_bytes(batch) * self.layers as f64
    }

    /// Tokens (or patches) processed per iteration at batch `b`.
    pub fn tokens_per_iteration(&self, batch: usize) -> f64 {
        (batch * self.seq_len) as f64
    }

    /// `b * s * h` — the token-channel volume all activation sizing scales
    /// with.
    fn token_channels(&self, batch: usize) -> f64 {
        (batch * self.seq_len * self.hidden) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt13b() -> ModelConfig {
        ModelConfig::decoder_lm("13B", 40, 40, 5120)
    }

    #[test]
    fn thirteen_b_parameter_count_matches_table_iv() {
        let p = gpt13b().total_params();
        assert!((12.5e9..13.5e9).contains(&p), "P = {p:.3e}");
    }

    #[test]
    fn one_seventy_five_b_matches_gpt3() {
        let m = ModelConfig::decoder_lm("175B", 96, 96, 12288);
        let p = m.size_billions();
        assert!((170.0..180.0).contains(&p), "{p}");
    }

    #[test]
    fn activations_match_paper_calibration() {
        // §III-C: 13B at batch 32 stores ~213 GB of activations, ~12.5 GB of
        // which are inter-block checkpoints.
        let m = gpt13b();
        let total = m.total_act_bytes(32);
        let inter = m.inter_block_act_bytes(32);
        assert!((200e9..230e9).contains(&total), "total = {total:.3e}");
        assert!((12e9..15e9).contains(&inter), "inter = {inter:.3e}");
    }

    #[test]
    fn forward_flops_give_expected_gpu_time() {
        // 13B @ batch 32: ~830 TFLOP forward; on a 160 TFLOPS 4090 that is
        // ~5.2 s, matching Fig. 1c's ~5 s forward stage.
        let f = gpt13b().forward_flops(32);
        assert!((800e12..900e12).contains(&f), "FLOP_f = {f:.3e}");
    }

    #[test]
    fn dit_xl_matches_675m() {
        let m = ModelConfig::dit("DiT-XL/2", 28, 16, 1152);
        let p = m.total_params();
        assert!((0.6e9..0.75e9).contains(&p), "P = {p:.3e}");
    }

    #[test]
    fn backward_is_twice_forward_by_convention() {
        // Table I: FLOP during the backward stage is 2 * FLOP_f. The
        // constant lives at call sites; this test pins the convention for
        // block-level recompute accounting (recompute cost == forward cost).
        let m = gpt13b();
        assert!(m.block_forward_flops(32) > 0.0);
    }

    #[test]
    fn intra_split_sums_to_total() {
        assert_eq!(
            ACT_INTRA_ATTN_BYTES + ACT_INTRA_MLP_BYTES,
            ACT_INTRA_BYTES_PER_TOKEN_CHANNEL
        );
    }
}
