//! Table II: the tensors of mixed-precision LLM fine-tuning, their sizes,
//! and their lifecycles.

use crate::config::ModelConfig;

/// The tensor classes of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorKind {
    /// fp32 master parameters, produced and consumed by the optimizer.
    P32,
    /// fp32 Adam optimizer states (first and second moments).
    Os32,
    /// fp16 gradients, produced by backward, consumed by the optimizer.
    G16,
    /// fp16 parameter copy used by forward/backward compute.
    P16,
    /// fp16 activations, produced by forward, consumed by backward.
    A16,
}

/// The training stage during which a tensor is produced or consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
    /// Optimizer execution (previous or current iteration).
    Optimizer,
}

impl TensorKind {
    /// Bytes per model parameter this tensor class occupies (Table II).
    pub fn bytes_per_param(self) -> f64 {
        match self {
            TensorKind::P32 => 4.0,
            TensorKind::Os32 => 8.0,
            TensorKind::G16 => 2.0,
            TensorKind::P16 => 2.0,
            TensorKind::A16 => 0.0, // activation size depends on batch, not P
        }
    }

    /// The stage that produces this tensor.
    pub fn produced_during(self) -> Stage {
        match self {
            TensorKind::P32 | TensorKind::Os32 | TensorKind::P16 => Stage::Optimizer,
            TensorKind::G16 => Stage::Backward,
            TensorKind::A16 => Stage::Forward,
        }
    }

    /// The stage that consumes this tensor.
    pub fn consumed_during(self) -> Stage {
        match self {
            TensorKind::P32 | TensorKind::Os32 | TensorKind::G16 => Stage::Optimizer,
            TensorKind::P16 => Stage::Forward, // and backward
            TensorKind::A16 => Stage::Backward,
        }
    }
}

/// Model-state byte totals for a given model (everything except A16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStates {
    /// fp32 master parameters: `4P`.
    pub p32: f64,
    /// fp32 optimizer moments: `8P`.
    pub os32: f64,
    /// fp16 gradients: `2P`.
    pub g16: f64,
    /// fp16 compute copy: `2P`.
    pub p16: f64,
}

impl ModelStates {
    /// Computes the Table II model-state inventory for `model`.
    pub fn of(model: &ModelConfig) -> Self {
        let p = model.total_params();
        ModelStates {
            p32: 4.0 * p,
            os32: 8.0 * p,
            g16: 2.0 * p,
            p16: 2.0 * p,
        }
    }

    /// Total model-state bytes: `16P`.
    pub fn total(&self) -> f64 {
        self.p32 + self.os32 + self.g16 + self.p16
    }

    /// Bytes the optimizer *reads* per parameter-complete update: the fp32
    /// master states (`12P`; gradients are already in main memory after
    /// active offloading).
    pub fn optimizer_read(&self) -> f64 {
        self.p32 + self.os32
    }

    /// Bytes the optimizer *writes* back: updated fp32 states plus the
    /// fresh fp16 copy (`14P`) — the `14P` terms of Eq. 5.
    pub fn optimizer_write(&self) -> f64 {
        self.p32 + self.os32 + self.p16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_sizes() {
        assert_eq!(TensorKind::P32.bytes_per_param(), 4.0);
        assert_eq!(TensorKind::Os32.bytes_per_param(), 8.0);
        assert_eq!(TensorKind::G16.bytes_per_param(), 2.0);
        assert_eq!(TensorKind::P16.bytes_per_param(), 2.0);
    }

    #[test]
    fn lifecycle_matches_table_ii() {
        assert_eq!(TensorKind::A16.produced_during(), Stage::Forward);
        assert_eq!(TensorKind::A16.consumed_during(), Stage::Backward);
        assert_eq!(TensorKind::G16.produced_during(), Stage::Backward);
        assert_eq!(TensorKind::G16.consumed_during(), Stage::Optimizer);
        assert_eq!(TensorKind::P16.produced_during(), Stage::Optimizer);
    }

    #[test]
    fn state_totals_for_13b() {
        // §III-C: the GPU-resident optimizer of G10 moves 14P = 182 GB per
        // direction for a 13B model; 16P of total states is ~208 GB.
        let m = ModelConfig::decoder_lm("13B", 40, 40, 5120);
        let s = ModelStates::of(&m);
        assert!((s.optimizer_write() - 14.0 * m.total_params()).abs() < 1.0);
        assert!(
            (175e9..190e9).contains(&s.optimizer_write()),
            "{}",
            s.optimizer_write()
        );
        assert!((200e9..215e9).contains(&s.total()));
    }
}
