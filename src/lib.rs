#![warn(missing_docs)]
//! # ratel-repro
//!
//! A from-scratch Rust reproduction of **"Ratel: Optimizing Holistic Data
//! Movement to Fine-tune 100B Model on a Consumer GPU"** (ICDE 2025).
//!
//! The workspace builds everything the paper describes or depends on:
//!
//! * [`tensor`] — a CPU tensor/transformer library with explicit per-layer
//!   forward/backward and emulated half precision;
//! * [`storage`] — a three-tier store (GPU arena / host pool / SSD spill
//!   files) with byte-metered inter-tier traffic;
//! * [`hw`] — the evaluation server's hardware catalog (Table III/VII);
//! * [`model`] — analytic model descriptions (Tables II/IV/VI);
//! * [`sim`] — a deterministic discrete-event simulator of intra-server
//!   tensor movement;
//! * [`core`] — Ratel itself: hardware-aware profiling (§IV-B), active
//!   gradient offloading (§IV-C), the convex activation planner (§IV-D),
//!   schedule builders, and a *real* out-of-core training engine whose
//!   results are bit-identical to in-memory training;
//! * [`baselines`] — ZeRO-Infinity/Offload, Colossal-AI, FlashNeuron, G10,
//!   Capuchin, Checkmate, Megatron-LM, and Fast-DiT as strategies.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure; `cargo run -p ratel-bench
//! --bin repro all` regenerates them.

pub use ratel as core;
pub use ratel_baselines as baselines;
pub use ratel_hw as hw;
pub use ratel_model as model;
pub use ratel_obs as obs;
pub use ratel_sim as sim;
pub use ratel_storage as storage;
pub use ratel_tensor as tensor;

/// Convenience prelude for the examples and downstream users.
pub mod prelude {
    pub use ratel::engine::data::{corpus_batches, learnable_batch, random_batch, CharVocab};
    pub use ratel::engine::executor::TaskBreakdown;
    pub use ratel::engine::lr::LrSchedule;
    pub use ratel::engine::reference::ReferenceTrainer;
    pub use ratel::engine::scaler::ScalePolicy;
    pub use ratel::engine::{
        ActDecision, EngineConfig, ExecutionOptions, ExecutorOptions, RatelEngine, StepStats,
    };
    pub use ratel::offload::GradOffloadMode;
    pub use ratel::planner::{ActivationPlanner, SwapPlan};
    pub use ratel::profile::HardwareProfile;
    pub use ratel::schedule::RatelSchedule;
    pub use ratel::{Batch, Ratel, RatelError, RatelMemoryModel, RatelTrainer, TrainingPlan};
    pub use ratel_baselines::{ActStrategy, System};
    pub use ratel_hw::{GpuSpec, ServerConfig};
    pub use ratel_model::{zoo, ModelConfig, ModelProfile};
    pub use ratel_tensor::{AdamParams, GptConfig};
}
